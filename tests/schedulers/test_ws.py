"""Work-stealing scheduler tests."""

from repro.runtime.engine import SchedContext, Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, TaskState
from repro.schedulers.ws import LocalityWorkStealing, WorkStealing


def make_ctx(machine):
    return SchedContext(machine.platform(), AnalyticalPerfModel(machine.calibration()))


def ready(flow, impls=("cpu", "cuda")):
    task = flow.submit("k", [(flow.data(64), AccessMode.RW)], flops=1e6,
                       implementations=impls)
    task.state = TaskState.READY
    return task


class TestWorkStealing:
    def test_sources_round_robin(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = WorkStealing()
        sched.setup(ctx)
        flow = TaskFlow()
        for _ in range(len(ctx.workers)):
            sched.push(ready(flow))
        assert all(len(q) == 1 for q in sched._deques.values())

    def test_own_deque_is_lifo(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = WorkStealing()
        sched.setup(ctx)
        flow = TaskFlow()
        first, second = ready(flow), ready(flow)
        worker = ctx.workers[0]
        sched._deques[worker.wid].extend([first, second])
        assert sched.pop(worker) is second

    def test_steals_from_most_loaded(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = WorkStealing()
        sched.setup(ctx)
        flow = TaskFlow()
        thief, light, heavy = ctx.workers[0], ctx.workers[1], ctx.workers[2]
        sched._deques[light.wid].append(ready(flow))
        marked = [ready(flow) for _ in range(3)]
        sched._deques[heavy.wid].extend(marked)
        stolen = sched.pop(thief)
        assert stolen is marked[0]  # FIFO end of the most loaded victim
        assert sched.stats()["steals"] == 1.0

    def test_steal_skips_incompatible_tasks(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = WorkStealing()
        sched.setup(ctx)
        flow = TaskFlow()
        gpu_only = ready(flow, impls=("cuda",))
        victim = ctx.workers_of_arch("cuda")[0]
        sched._deques[victim.wid].append(gpu_only)
        cpu_thief = ctx.workers_of_arch("cpu")[0]
        assert sched.pop(cpu_thief) is None
        assert sched.pop(victim) is gpu_only

    def test_release_locality(self, hetero_machine):
        """A successor released by a completion lands on the releasing
        worker's deque."""
        ctx = make_ctx(hetero_machine)
        sched = WorkStealing()
        sched.setup(ctx)
        flow = TaskFlow()
        releasing = ctx.workers[2]
        done = ready(flow)
        sched.on_task_done(done, releasing)
        succ = ready(flow)
        sched.push(succ)
        assert succ in sched._deques[releasing.wid]


class TestLocalityWorkStealing:
    def test_same_node_victim_preferred(self, two_gpu_machine):
        ctx = make_ctx(two_gpu_machine)
        sched = LocalityWorkStealing()
        sched.setup(ctx)
        flow = TaskFlow()
        cpu_workers = ctx.workers_of_arch("cpu")
        thief, neighbor = cpu_workers[0], cpu_workers[1]
        far = ctx.workers_of_arch("cuda")[0]
        near_task, far_task = ready(flow), ready(flow)
        sched._deques[neighbor.wid].append(near_task)
        sched._deques[far.wid].extend([far_task, ready(flow)])  # more loaded
        assert sched.pop(thief) is near_task

    def test_end_to_end(self, hetero_machine):
        from repro.analysis.validation import check_schedule
        from tests.conftest import make_fork_join_program

        program = make_fork_join_program(width=9)
        sim = Simulator(
            hetero_machine.platform(),
            LocalityWorkStealing(),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        check_schedule(program, res.trace, sim.platform.workers)
