"""Dm / Dmda / Dmdas behavioural tests."""

from repro.runtime.engine import SchedContext, Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, TaskState
from repro.schedulers.dm import Dm
from repro.schedulers.dmda import Dmda
from repro.schedulers.dmdas import Dmdas


def make_ctx(machine):
    return SchedContext(machine.platform(), AnalyticalPerfModel(machine.calibration()))


def ready(flow, size=1024, type_name="gemm", flops=1e9, priority=0, impls=("cpu", "cuda")):
    task = flow.submit(
        type_name,
        [(flow.data(size), AccessMode.RW)],
        flops=flops,
        implementations=impls,
        priority=priority,
    )
    task.state = TaskState.READY
    return task


class TestDm:
    def test_assigns_to_fastest_idle_worker(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = Dm()
        sched.setup(ctx)
        flow = TaskFlow()
        task = ready(flow, flops=2e9)  # strongly GPU-best
        sched.push(task)
        gpu_worker = ctx.workers_of_arch("cuda")[0]
        assert sched.pop(gpu_worker) is task

    def test_load_balances_across_gpu_workers(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = Dm()
        sched.setup(ctx)
        flow = TaskFlow()
        tasks = [ready(flow, flops=2e9) for _ in range(4)]
        for t in tasks:
            sched.push(t)
        gpus = ctx.workers_of_arch("cuda")
        counts = [len(sched._queues[w.wid]) for w in gpus]
        assert counts == [2, 2]

    def test_spills_to_cpu_when_gpus_saturated(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = Dm()
        sched.setup(ctx)
        flow = TaskFlow()
        for _ in range(300):
            sched.push(ready(flow, flops=2e9))
        cpu_queued = sum(
            len(sched._queues[w.wid]) for w in ctx.workers_of_arch("cpu")
        )
        assert cpu_queued > 0

    def test_pop_from_empty_returns_none(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = Dm()
        sched.setup(ctx)
        assert sched.pop(ctx.workers[0]) is None


class TestDmda:
    def test_data_locality_steers_assignment(self, two_gpu_machine):
        """A task whose input lives on gpu1 must be assigned there, not
        to the equally-fast gpu0."""
        ctx = make_ctx(two_gpu_machine)
        sched = Dmda()
        sched.setup(ctx)
        flow = TaskFlow()
        big = flow.data(32 * 2**20)
        big.valid_nodes = {2}  # gpu1's memory node
        task = flow.submit("gemm", [(big, AccessMode.R)], flops=1e9,
                           implementations=("cuda",))
        task.state = TaskState.READY
        sched.push(task)
        gpu1_workers = [w.wid for w in ctx.workers if w.memory_node == 2]
        assert any(sched._queues[wid] for wid in gpu1_workers)

    def test_prefetch_starts_at_push(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = Dmda()
        sched.setup(ctx)
        flow = TaskFlow()
        big = flow.data(16 * 2**20)  # in RAM
        task = flow.submit("gemm", [(big, AccessMode.R)], flops=5e9,
                           implementations=("cuda",))
        task.state = TaskState.READY
        sched.push(task)
        assert big.is_valid_on(1)  # replica (in flight) already registered


class TestDmdas:
    def test_priority_order_within_worker(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = Dmdas()
        sched.setup(ctx)
        flow = TaskFlow()
        low = ready(flow, flops=2e9, priority=1)
        high = ready(flow, flops=2e9, priority=9)
        worker = ctx.workers_of_arch("cuda")[0]
        sched._enqueue(low, worker)
        sched._enqueue(high, worker)
        assert sched.pop(worker) is high
        assert sched.pop(worker) is low

    def test_locality_tiebreak_among_equal_priority(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = Dmdas(locality_window=8)
        sched.setup(ctx)
        flow = TaskFlow()
        local = flow.data(8 * 2**20)
        remote = flow.data(8 * 2**20)
        local.valid_nodes = {1}  # on the GPU already
        t_remote = flow.submit("gemm", [(remote, AccessMode.R)], flops=1e9,
                               implementations=("cuda",))
        t_local = flow.submit("gemm", [(local, AccessMode.R)], flops=1e9,
                              implementations=("cuda",))
        for t in (t_remote, t_local):
            t.state = TaskState.READY
        gpu = ctx.workers_of_arch("cuda")[0]
        sched._enqueue(t_remote, gpu)
        sched._enqueue(t_local, gpu)
        assert sched.pop(gpu) is t_local

    def test_end_to_end_feasible(self, hetero_machine):
        from repro.analysis.validation import check_schedule
        from tests.conftest import make_fork_join_program

        program = make_fork_join_program(width=10)
        sim = Simulator(
            hetero_machine.platform(),
            Dmdas(),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        check_schedule(program, res.trace, sim.platform.workers)
