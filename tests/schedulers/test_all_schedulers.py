"""Cross-cutting scheduler tests: every policy yields feasible schedules."""

import pytest

from repro.analysis.validation import check_schedule
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode
from repro.schedulers.registry import make_scheduler, scheduler_names
from tests.conftest import make_chain_program, make_fork_join_program

ALL = scheduler_names()


@pytest.mark.parametrize("name", ALL)
def test_fork_join_is_feasible(name, hetero_machine):
    program = make_fork_join_program(width=12)
    sim = Simulator(
        hetero_machine.platform(),
        make_scheduler(name),
        AnalyticalPerfModel(hetero_machine.calibration()),
        seed=1,
    )
    res = sim.run(program)
    check_schedule(program, res.trace, sim.platform.workers)


@pytest.mark.parametrize("name", ALL)
def test_chain_is_feasible(name, hetero_machine):
    program = make_chain_program(n=8)
    sim = Simulator(
        hetero_machine.platform(),
        make_scheduler(name),
        AnalyticalPerfModel(hetero_machine.calibration()),
        seed=1,
    )
    res = sim.run(program)
    check_schedule(program, res.trace, sim.platform.workers)


@pytest.mark.parametrize("name", ALL)
def test_arch_restricted_tasks_land_correctly(name, two_gpu_machine):
    """CPU-only and GPU-only tasks must run on the right units under
    every policy."""
    flow = TaskFlow()
    handles = [flow.data(1024) for _ in range(12)]
    for i, h in enumerate(handles):
        impls = ("cpu",) if i % 3 == 0 else ("cuda",) if i % 3 == 1 else ("cpu", "cuda")
        flow.submit("k", [(h, AccessMode.W)], flops=1e7, implementations=impls)
    program = flow.program()
    sim = Simulator(
        two_gpu_machine.platform(),
        make_scheduler(name),
        AnalyticalPerfModel(two_gpu_machine.calibration()),
        seed=2,
    )
    res = sim.run(program)
    check_schedule(program, res.trace, sim.platform.workers)


@pytest.mark.parametrize("name", ALL)
def test_cpu_only_platform(name, cpu_machine):
    """Every policy must work on a homogeneous machine (|A| = 1)."""
    program = make_fork_join_program(width=6)
    sim = Simulator(
        cpu_machine.platform(),
        make_scheduler(name),
        AnalyticalPerfModel(cpu_machine.calibration()),
        seed=3,
    )
    res = sim.run(program)
    check_schedule(program, res.trace, sim.platform.workers)


@pytest.mark.parametrize("name", ["multiprio", "dmdas", "heteroprio", "dm", "dmda"])
def test_hetero_aware_beats_single_worker_bound(name, hetero_machine):
    """Heterogeneity-aware policies must beat the all-on-one-CPU bound on
    an embarrassingly parallel GPU-friendly workload."""
    program = make_fork_join_program(width=24, flops=5e8)
    pm = AnalyticalPerfModel(hetero_machine.calibration())
    serial_cpu = sum(pm.estimate(t, "cpu") for t in program.tasks)
    sim = Simulator(hetero_machine.platform(), make_scheduler(name), pm, seed=0)
    res = sim.run(program)
    assert res.makespan < serial_cpu


def test_registry_rejects_unknown():
    from repro.utils.validation import ValidationError

    with pytest.raises(ValidationError, match="unknown scheduler"):
        make_scheduler("nope")


def test_registry_rejects_duplicate_registration():
    from repro.schedulers.registry import register_scheduler
    from repro.utils.validation import ValidationError

    with pytest.raises(ValidationError, match="already registered"):
        register_scheduler("eager", lambda: None)  # type: ignore[arg-type]


def test_registry_lists_paper_schedulers():
    names = scheduler_names()
    for required in ("multiprio", "dmdas", "heteroprio", "lws", "eager"):
        assert required in names
