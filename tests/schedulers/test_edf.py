"""Deadline-aware scheduling: EDF ordering, MultiPrio's deadline boost,
and the registry's deadline-aware entries."""

from __future__ import annotations

import pytest

from repro.api import SimConfig, SimSpec
from repro.platform.machines import cpu_only
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, Task
from repro.schedulers.edf import EDF
from repro.schedulers.multiprio import MultiPrio
from repro.schedulers.registry import make_scheduler, scheduler_names
from repro.runtime.engine import Simulator


def deadline_bag(deadlines, implementations=("cpu",)):
    """Independent tasks, one per deadline (submission order = index)."""
    tf = TaskFlow("bag")
    for i, dl in enumerate(deadlines):
        h = tf.data(4096, label=f"d{i}")
        tf.submit(
            "gemm", [(h, AccessMode.W)], flops=5e7,
            implementations=implementations, deadline_us=dl,
        )
    return tf.program()


def run_on_one_cpu(program, scheduler):
    machine = cpu_only(n_cpus=1)
    sim = Simulator(
        machine.platform(), scheduler,
        AnalyticalPerfModel(machine.calibration()),
        seed=0, record_trace=True,
    )
    res = sim.run(program)
    return [r.tid for r in sorted(res.trace.task_records, key=lambda r: r.start)]


class TestEDF:
    def test_pops_in_deadline_order(self):
        # Submission order is the reverse of urgency.
        order = run_on_one_cpu(
            deadline_bag([5000.0, 4000.0, 3000.0, 2000.0, 1000.0]), EDF()
        )
        assert order == [4, 3, 2, 1, 0]

    def test_no_deadline_sorts_last_fifo(self):
        inf = float("inf")
        order = run_on_one_cpu(
            deadline_bag([inf, 2000.0, inf, 1000.0]), EDF()
        )
        assert order == [3, 1, 0, 2]

    def test_ties_break_by_submission_order(self):
        order = run_on_one_cpu(
            deadline_bag([1000.0, 1000.0, 1000.0]), EDF()
        )
        assert order == [0, 1, 2]

    def test_arch_mismatch_scans_past_urgent_task(self, hetero_machine):
        # The most urgent task is GPU-only; a CPU worker must skip it
        # and take the next feasible one without losing it.
        tf = TaskFlow("mixed")
        h0 = tf.data(4096, label="g")
        tf.submit("gemm", [(h0, AccessMode.W)], flops=5e7,
                  implementations=("cuda",), deadline_us=100.0)
        h1 = tf.data(4096, label="c")
        tf.submit("gemm", [(h1, AccessMode.W)], flops=5e7,
                  implementations=("cpu", "cuda"), deadline_us=5000.0)
        sim = Simulator(
            hetero_machine.platform(), EDF(),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0, record_trace=True,
        )
        res = sim.run(tf.program())
        by_tid = {r.tid: r for r in res.trace.task_records}
        assert len(by_tid) == 2  # both ran; nothing was dropped


class TestDeadlineBoost:
    def make(self, boost=1000.0):
        sched = MultiPrio(deadline_boost=boost)

        class Ctx:
            now = 0.0

        sched.ctx = Ctx()
        return sched

    def test_boost_gain_dominates_normal_gains(self):
        # Normal gains live in [0, 1]; a boosted gain must be >= 2 so a
        # slack-critical task preempts any gain-sorted peer.
        sched = self.make(boost=1000.0)
        tight = Task(0, "t", deadline_us=100.0)
        assert 2.0 <= sched._boost_gain(tight) <= 3.0
        overdue = Task(1, "t", deadline_us=1.0)
        sched.ctx.now = 500.0  # way past the deadline
        assert sched._boost_gain(overdue) == 3.0

    def test_slack_beyond_horizon_not_boosted(self):
        sched = self.make(boost=1000.0)
        relaxed = Task(0, "t", deadline_us=50_000.0)
        assert sched._boost_gain(relaxed) is None

    def test_no_deadline_never_boosted(self):
        sched = self.make(boost=1000.0)
        assert sched._boost_gain(Task(0, "t")) is None

    def test_disabled_by_default(self):
        assert MultiPrio().deadline_boost is None

    def test_tight_deadline_task_runs_earlier(self):
        # Ten loose tasks then one tight-deadline straggler submitted
        # last: with the boost it must not run last.
        deadlines = [50_000.0] * 10 + [400.0]
        plain = run_on_one_cpu(deadline_bag(deadlines), MultiPrio())
        boosted = run_on_one_cpu(
            deadline_bag(deadlines), MultiPrio(deadline_boost=1000.0)
        )
        assert plain.index(10) > boosted.index(10)
        assert boosted.index(10) == 0


class TestRegistry:
    def test_deadline_schedulers_registered(self):
        names = scheduler_names()
        assert "edf" in names
        assert "multiprio-deadline" in names

    def test_multiprio_deadline_has_boost(self):
        sched = make_scheduler("multiprio-deadline")
        assert isinstance(sched, MultiPrio)
        assert sched.deadline_boost is not None

    def test_facade_accepts_deadline_boost_param(self):
        res = SimSpec(
            "small-hetero", "multiprio",
            config=SimConfig(sched_params={"deadline_boost": 2000.0}),
        ).run(deadline_bag([1000.0] * 4, implementations=("cpu", "cuda")))
        assert res.makespan > 0
