"""HeteroPrio / AutoHeteroPrio behavioural tests."""

from repro.runtime.engine import SchedContext
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, TaskState
from repro.schedulers.auto_heteroprio import AutoHeteroPrio
from repro.schedulers.heteroprio import HeteroPrio


def make_ctx(machine):
    return SchedContext(machine.platform(), AnalyticalPerfModel(machine.calibration()))


def ready(flow, type_name, flops, impls=("cpu", "cuda")):
    task = flow.submit(type_name, [(flow.data(1024), AccessMode.RW)], flops=flops,
                       implementations=impls)
    task.state = TaskState.READY
    return task


class TestManualOrders:
    def test_arch_follows_its_order(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = HeteroPrio(
            type_orders={"cpu": ["potrf", "gemm"], "cuda": ["gemm", "potrf"]},
            steal_guard=None,
        )
        sched.setup(ctx)
        flow = TaskFlow()
        potrf = ready(flow, "potrf", 1e8)
        gemm = ready(flow, "gemm", 1e8)
        sched.push(potrf)
        sched.push(gemm)
        cpu = ctx.workers_of_arch("cpu")[0]
        gpu = ctx.workers_of_arch("cuda")[0]
        assert sched.pop(cpu) is potrf
        assert sched.pop(gpu) is gemm

    def test_unlisted_types_still_drain(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = HeteroPrio(type_orders={"cpu": ["gemm"]}, steal_guard=None)
        sched.setup(ctx)
        flow = TaskFlow()
        other = ready(flow, "mystery", 1e6)
        sched.push(other)
        assert sched.pop(ctx.workers_of_arch("cpu")[0]) is other

    def test_fifo_within_bucket(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = HeteroPrio(steal_guard=None)
        sched.setup(ctx)
        flow = TaskFlow()
        first = ready(flow, "gemm", 1e8)
        second = ready(flow, "gemm", 1e8)
        sched.push(first)
        sched.push(second)
        worker = ctx.workers_of_arch("cuda")[0]
        assert sched.pop(worker) is first
        assert sched.pop(worker) is second


class TestStealGuard:
    def test_guard_blocks_terrible_slowdown(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = HeteroPrio(steal_guard=5.0)
        sched.setup(ctx)
        flow = TaskFlow()
        # Large gemm: ~50x slower on one CPU core than on the GPU.
        gemm = ready(flow, "gemm", 2e9)
        sched.push(gemm)
        cpu = ctx.workers_of_arch("cpu")[0]
        gpu = ctx.workers_of_arch("cuda")[0]
        assert sched.pop(cpu) is None
        assert sched.pop(gpu) is gemm

    def test_guard_admits_modest_slowdown(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = HeteroPrio(steal_guard=20.0)
        sched.setup(ctx)
        flow = TaskFlow()
        # Small potrf: CPU competitive.
        potrf = ready(flow, "potrf", 1e7)
        sched.push(potrf)
        cpu = ctx.workers_of_arch("cpu")[0]
        assert sched.pop(cpu) is potrf


class TestAutoOrders:
    def test_gpu_prefers_most_accelerated_type(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = AutoHeteroPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        # gemm has a much larger GPU speedup than potrf at this size.
        potrf = ready(flow, "potrf", 1e9)
        gemm = ready(flow, "gemm", 1e9)
        sched.push(potrf)
        sched.push(gemm)
        order = sched._scan_order("cuda")
        assert order.index("gemm") < order.index("potrf")

    def test_cpu_order_is_reversed(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = AutoHeteroPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        sched.push(ready(flow, "potrf", 1e9))
        sched.push(ready(flow, "gemm", 1e9))
        cpu_order = sched._scan_order("cpu")
        gpu_order = sched._scan_order("cuda")
        assert cpu_order.index("potrf") < cpu_order.index("gemm")
        assert gpu_order.index("gemm") < gpu_order.index("potrf")

    def test_cpu_only_types_sort_last_for_gpu(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = AutoHeteroPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        cpu_only = ready(flow, "io", 1e6, impls=("cpu",))
        both = ready(flow, "gemm", 1e9)
        sched.push(cpu_only)
        sched.push(both)
        order = sched._scan_order("cuda")
        assert order.index("gemm") < order.index("io")
