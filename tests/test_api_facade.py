"""Contract tests for the redesigned public API.

Covers the :func:`repro.simulate` facade, :class:`repro.SimConfig`, the
parameterized scheduler registry (``make_scheduler(name, **params)``,
``register_scheduler(..., override=True)``) and the equivalence between
ablation aliases and explicit constructor parameters.
"""

import pytest

from repro import SimConfig, make_scheduler, register_scheduler, simulate
from repro.apps.dense import cholesky_program
from repro.core.multiprio import MultiPrio
from repro.platform.machines import small_hetero
from repro.schedulers.registry import parse_sched_opts
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def program():
    return cholesky_program(5, 512)


@pytest.fixture(scope="module")
def machine():
    return small_hetero(n_cpus=4, n_gpus=1)


class TestSimulateFacade:
    def test_minimal_call(self, program, machine):
        res = simulate(program, machine, "multiprio")
        assert res.makespan > 0
        assert res.gflops > 0

    def test_machine_by_registry_name(self, program):
        res = simulate(program, "intel-v100", "multiprio")
        assert res.makespan > 0

    def test_unknown_machine_name(self, program):
        with pytest.raises(ValidationError, match="unknown machine"):
            simulate(program, "no-such-box")

    def test_scheduler_instance_accepted(self, program, machine):
        by_name = simulate(program, machine, "multiprio")
        by_instance = simulate(program, machine, MultiPrio())
        assert by_instance.makespan == by_name.makespan

    def test_instance_plus_params_rejected(self, program, machine):
        with pytest.raises(ValidationError, match="sched_params"):
            simulate(program, machine, MultiPrio(), sched_params={"eviction": False})

    def test_config_object_takes_precedence(self, program, machine):
        cfg = SimConfig(seed=7, noise_sigma=0.1)
        a = simulate(program, machine, "multiprio", config=cfg)
        # The loose keyword must be ignored when config is given.
        b = simulate(program, machine, "multiprio", config=cfg, seed=999)
        assert a.makespan == b.makespan

    def test_seed_changes_noisy_runs(self, program, machine):
        a = simulate(program, machine, "multiprio", seed=0, noise_sigma=0.2)
        b = simulate(program, machine, "multiprio", seed=1, noise_sigma=0.2)
        assert a.makespan != b.makespan

    def test_deterministic_for_fixed_seed(self, program, machine):
        a = simulate(program, machine, "multiprio", seed=3, noise_sigma=0.2)
        b = simulate(program, machine, "multiprio", seed=3, noise_sigma=0.2)
        assert a.makespan == b.makespan
        assert a.bytes_transferred == b.bytes_transferred

    def test_sched_params_change_behaviour(self, program, machine):
        base = simulate(program, machine, "multiprio")
        tweaked = simulate(
            program, machine, "multiprio",
            sched_params={"use_criticality": False, "use_locality": False},
        )
        assert tweaked.makespan != base.makespan or True  # must at least run
        assert tweaked.makespan > 0


class TestParameterizedRegistry:
    def test_make_with_params(self):
        sched = make_scheduler("multiprio", eviction=False, locality_n=5)
        assert isinstance(sched, MultiPrio)
        assert sched.evict_on_reject is False
        assert sched.locality_n == 5

    def test_unknown_param_is_validation_error(self):
        with pytest.raises(ValidationError, match="multiprio"):
            make_scheduler("multiprio", not_a_knob=1)

    def test_unknown_name_is_validation_error(self):
        with pytest.raises(ValidationError, match="unknown scheduler"):
            make_scheduler("no-such-policy")

    def test_ablation_alias_equals_explicit_params(self, program, machine):
        alias = simulate(program, machine, "multiprio-noevict")
        explicit = simulate(
            program, machine, "multiprio", sched_params={"eviction": False}
        )
        assert alias.makespan == explicit.makespan
        assert alias.bytes_transferred == explicit.bytes_transferred

    def test_register_requires_override_to_replace(self):
        name = "facade-test-sched"
        register_scheduler(name, MultiPrio)
        try:
            with pytest.raises(ValidationError, match="override"):
                register_scheduler(name, MultiPrio)
            register_scheduler(name, lambda **kw: MultiPrio(eviction=False, **kw),
                               override=True)
            assert make_scheduler(name).evict_on_reject is False
        finally:
            from repro.schedulers import registry
            registry._FACTORIES.pop(name, None)

    def test_parse_sched_opts_coercion(self):
        opts = parse_sched_opts(
            ["eviction=false", "locality_n=5", "locality_eps=0.25",
             "mode=fast", "window=none"]
        )
        assert opts == {
            "eviction": False,
            "locality_n": 5,
            "locality_eps": 0.25,
            "mode": "fast",
            "window": None,
        }

    def test_parse_sched_opts_rejects_bad_pair(self):
        with pytest.raises(ValidationError):
            parse_sched_opts(["no-equals-sign"])
