"""RNG determinism and validation helper tests."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, make_rng
from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


class TestRng:
    def test_same_seed_same_stream(self):
        assert make_rng(42).integers(0, 1 << 30) == make_rng(42).integers(0, 1 << 30)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_default_seed_is_stable(self):
        assert make_rng(None).integers(0, 1 << 30) == make_rng(None).integers(0, 1 << 30)

    def test_derive_is_deterministic(self):
        a = derive_rng(make_rng(9), "worker", 3).integers(0, 1 << 30)
        b = derive_rng(make_rng(9), "worker", 3).integers(0, 1 << 30)
        assert a == b

    def test_derive_keys_differ(self):
        parent1, parent2 = make_rng(9), make_rng(9)
        a = derive_rng(parent1, "x").integers(0, 1 << 30)
        b = derive_rng(parent2, "y").integers(0, 1 << 30)
        assert a != b


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.0) == 2.0
        with pytest.raises(ValidationError):
            check_positive("x", 0.0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValidationError):
            check_non_negative("x", -1e-9)

    def test_check_in_range(self):
        assert check_in_range("x", 0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValidationError):
            check_in_range("x", 1.5, 0.0, 1.0)

    def test_check_type(self):
        assert check_type("x", 3, int) == 3
        with pytest.raises(ValidationError, match="must be int"):
            check_type("x", "3", int)

    def test_error_hierarchy(self):
        from repro.utils.validation import DeadlockError, ReproError, SchedulingError

        assert issubclass(ValidationError, (ReproError, ValueError))
        assert issubclass(SchedulingError, (ReproError, RuntimeError))
        assert issubclass(DeadlockError, (ReproError, RuntimeError))
