"""Unit helpers tests."""

import pytest

from repro.utils.units import (
    bytes_human,
    gflops,
    ms_to_us,
    s_to_us,
    time_human,
    us_to_ms,
    us_to_s,
)


def test_round_trips():
    assert us_to_ms(ms_to_us(3.5)) == pytest.approx(3.5)
    assert us_to_s(s_to_us(0.25)) == pytest.approx(0.25)


def test_gflops():
    # 1e9 flops in 1 second = 1 GFlop/s.
    assert gflops(1e9, 1_000_000.0) == pytest.approx(1.0)
    assert gflops(1e9, 0.0) == 0.0


@pytest.mark.parametrize(
    "n,expected",
    [(512, "512 B"), (2048, "2.0 KiB"), (3 * 2**20, "3.0 MiB"), (5 * 2**30, "5.0 GiB")],
)
def test_bytes_human(n, expected):
    assert bytes_human(n) == expected


@pytest.mark.parametrize(
    "us,needle",
    [(5.0, "us"), (1500.0, "ms"), (2_500_000.0, "s")],
)
def test_time_human(us, needle):
    assert time_human(us).endswith(needle)
