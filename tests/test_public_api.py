"""Public API surface tests: documented entry points must exist."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.runtime",
        "repro.schedulers",
        "repro.apps.dense",
        "repro.apps.fmm",
        "repro.apps.sparseqr",
        "repro.platform",
        "repro.experiments",
        "repro.analysis",
        "repro.extensions",
        "repro.utils",
        "repro.obs",
        "repro.cluster",
        "repro.cli",
    ],
)
def test_subpackages_importable(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} must have a module docstring"


def test_all_exports_resolve_in_subpackages():
    for module in (
        "repro.core",
        "repro.runtime",
        "repro.schedulers",
        "repro.analysis",
        "repro.extensions",
        "repro.utils",
        "repro.obs",
        "repro.cluster",
    ):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None, f"{module}.{name}"


def test_readme_quickstart_names_exist():
    """Names used in the README quickstart must stay importable."""
    from repro import (  # noqa: F401
        AccessMode,
        AnalyticalPerfModel,
        MultiPrio,
        SimConfig,
        Simulator,
        TaskFlow,
        make_scheduler,
        register_scheduler,
        simulate,
    )
    from repro.platform import small_hetero  # noqa: F401
    from repro.apps.dense import cholesky_program  # noqa: F401


def test_public_classes_have_docstrings():
    from repro.core.multiprio import MultiPrio
    from repro.obs.bus import EventBus, Observability
    from repro.obs.metrics import Gauge, MetricsRegistry
    from repro.runtime.engine import SchedContext, Simulator
    from repro.runtime.stf import Program, TaskFlow

    for obj in (MultiPrio, Simulator, SchedContext, TaskFlow, Program,
                EventBus, Observability, Gauge, MetricsRegistry):
        assert obj.__doc__
        for name, member in vars(obj).items():
            if callable(member) and not name.startswith("_"):
                assert member.__doc__, f"{obj.__name__}.{name} lacks a docstring"
