"""TaskSubmit emission is unified across window modes (regression).

Before the fix, ``submission_window=None`` emitted every TaskSubmit in a
pre-loop at t=0.0 while windowed runs emitted them at ``ctx.now`` inside
the reveal loop — two code paths, two orderings. Both modes now go
through the same loop, so an unbounded run and a never-binding window
must produce identical event streams, and every task's Submit must
precede its Ready.
"""

from __future__ import annotations

from repro.obs.events import TaskReady, TaskSubmit
from repro.platform.machines import small_hetero
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.registry import make_scheduler
from tests.conftest import make_fork_join_program


def run_events(program, window):
    machine = small_hetero(n_cpus=4, n_gpus=1)
    sim = Simulator(
        machine.platform(),
        make_scheduler("multiprio"),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        record_level="tasks",
        submission_window=window,
    )
    res = sim.run(program)
    return res.events


def task_lifecycle(events):
    return [
        (type(e).__name__, e.t, e.tid)
        for e in events
        if isinstance(e, (TaskSubmit, TaskReady))
    ]


def test_unbounded_equals_never_binding_window():
    program = make_fork_join_program(width=8)
    unbounded = task_lifecycle(run_events(program, None))
    wide = task_lifecycle(run_events(program, len(program.tasks)))
    assert unbounded == wide


def test_submit_precedes_ready_per_task():
    program = make_fork_join_program(width=8)
    for window in (None, 3):
        events = run_events(program, window)
        submit_at: dict[int, int] = {}
        for i, ev in enumerate(events):
            if isinstance(ev, TaskSubmit):
                assert ev.tid not in submit_at, "duplicate submit"
                submit_at[ev.tid] = i
            elif isinstance(ev, TaskReady):
                assert submit_at[ev.tid] < i, (
                    f"task {ev.tid} became ready before it was submitted"
                )
        assert len(submit_at) == len(program.tasks)


def test_windowed_submits_carry_the_reveal_clock():
    # With window=1 a fork-join cannot reveal everything at t=0: later
    # submits must carry the completion-driven clock, not 0.0.
    program = make_fork_join_program(width=6)
    events = run_events(program, 1)
    submit_times = [e.t for e in events if isinstance(e, TaskSubmit)]
    assert submit_times[0] == 0.0
    assert max(submit_times) > 0.0
    assert submit_times == sorted(submit_times)
