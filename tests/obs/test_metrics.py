"""Metrics tests: counters, time-weighted gauges, registry, collector."""

import pytest

from repro.obs.events import TaskEnd, TaskRetryScheduled, TransferEvent
from repro.obs.metrics import Counter, Gauge, MetricsCollector, MetricsRegistry
from repro.utils.validation import ValidationError


class TestCounter:
    def test_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            Counter("x").inc(-1.0)


class TestGauge:
    def test_time_weighted_mean(self):
        g = Gauge("depth")
        g.set(2.0, 0.0)   # holds 2 over [0, 10)
        g.set(4.0, 10.0)  # holds 4 over [10, 20]
        assert g.time_weighted_mean(20.0) == pytest.approx(3.0)

    def test_mean_is_duration_weighted_not_sample_weighted(self):
        g = Gauge("depth")
        g.set(0.0, 0.0)
        for t in (1.0, 1.1, 1.2, 1.3):  # burst of samples, all value 10
            g.set(10.0, t)
        # value 0 held for 1us, value 10 for 9us
        assert g.time_weighted_mean(10.0) == pytest.approx(9.0)

    def test_time_backwards_rejected(self):
        g = Gauge("depth")
        g.set(1.0, 5.0)
        with pytest.raises(ValidationError):
            g.set(2.0, 4.0)

    def test_weighted_histogram(self):
        g = Gauge("depth")
        g.set(1.0, 0.0)
        g.set(5.0, 4.0)
        buckets = g.weighted_histogram([0.0, 2.0, 10.0], t_end=10.0)
        assert buckets == [pytest.approx(4.0), pytest.approx(6.0)]
        assert sum(buckets) == pytest.approx(10.0)

    def test_histogram_clamps_out_of_range(self):
        g = Gauge("depth")
        g.set(-3.0, 0.0)
        g.set(99.0, 1.0)
        buckets = g.weighted_histogram([0.0, 1.0, 2.0], t_end=2.0)
        assert buckets == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_histogram_needs_two_edges(self):
        with pytest.raises(ValidationError):
            Gauge("depth").weighted_histogram([1.0])

    def test_empty_gauge_stats(self):
        g = Gauge("depth")
        assert g.last == 0.0
        assert g.time_weighted_mean() == 0.0
        assert g.stats()["n"] == 0.0

    def test_stats(self):
        g = Gauge("depth")
        g.set(1.0, 0.0)
        g.set(7.0, 2.0)
        s = g.stats(4.0)
        assert s["last"] == 7.0 and s["min"] == 1.0 and s["max"] == 7.0
        assert s["mean"] == pytest.approx((1.0 * 2 + 7.0 * 2) / 4)


class TestRegistry:
    def test_create_or_get(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")

    def test_snapshot_flattening(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        reg.gauge("d").set(2.0, 0.0)
        snap = reg.snapshot(t_end=1.0, derived={"makespan_us": 1.0})
        flat = snap.as_dict()
        assert flat["n"] == 3.0
        assert flat["d.mean"] == pytest.approx(2.0)
        assert flat["makespan_us"] == 1.0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.reset()
        assert reg.snapshot().counters == {}


class TestCollector:
    def _collector(self):
        reg = MetricsRegistry()
        return reg, MetricsCollector(reg)

    def test_task_end_accounting(self):
        reg, col = self._collector()
        col.on_event(TaskEnd(t=10.0, tid=0, type_name="gemm", wid=0, node=0,
                             pop_time=0.0, start=2.0, end=10.0))
        snap = reg.snapshot()
        assert snap.counters["tasks_completed"] == 1.0
        assert snap.counters["exec_us.gemm"] == pytest.approx(8.0)

    def test_transfer_and_retry_counters(self):
        reg, col = self._collector()
        col.on_event(TransferEvent(t=0.0, hid=1, src=0, dst=2, nbytes=100,
                                   start=0.0, end=1.0))
        col.on_event(TaskRetryScheduled(t=5.0, tid=3, attempt=1))
        snap = reg.snapshot()
        assert snap.counters["link_bytes.0->2"] == 100.0
        assert snap.counters["transfers"] == 1.0
        assert snap.counters["retries"] == 1.0

    def test_idle_fractions_formula(self):
        class W:
            def __init__(self, wid, arch):
                self.wid, self.arch = wid, arch

        class P:
            workers = [W(0, "cpu"), W(1, "cpu"), W(2, "cuda")]

        reg, col = self._collector()
        col.bind_platform(P())
        # worker 0 occupied 5/10 (incl. 1us wait), worker 1 idle, gpu full
        col.on_event(TaskEnd(t=10.0, tid=0, type_name="k", wid=0, node=0,
                             pop_time=0.0, start=1.0, end=5.0))
        col.on_event(TaskEnd(t=10.0, tid=1, type_name="k", wid=2, node=1,
                             pop_time=0.0, start=0.0, end=10.0))
        fracs = col.idle_fractions(10.0)
        assert fracs["cpu"] == pytest.approx((0.5 + 1.0) / 2)
        assert fracs["cuda"] == pytest.approx(0.0)

    def test_idle_fractions_zero_makespan(self):
        class W:
            def __init__(self, wid, arch):
                self.wid, self.arch = wid, arch

        class P:
            workers = [W(0, "cpu")]

        _, col = self._collector()
        col.bind_platform(P())
        assert col.idle_fractions(0.0) == {"cpu": 0.0}
