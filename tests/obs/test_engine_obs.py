"""Engine + observability integration: zero-cost guarantee, event
consistency, decision provenance, fault events."""

import pytest

from repro.apps.dense import cholesky_program
from repro.core.multiprio import MultiPrio
from repro.obs.events import (
    DecisionEvent,
    RecordLevel,
    TaskEnd,
    TaskFault,
    TaskPop,
    TaskReady,
    TaskRetryScheduled,
    TaskStart,
    TaskSubmit,
    TransferEvent,
    WorkerDeath,
)
from repro.obs.export import idle_fractions_from_events, trace_from_events
from repro.platform.machines import small_hetero
from repro.runtime.engine import Simulator
from repro.runtime.faults import FaultModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.registry import make_scheduler


def run(scheduler_name="multiprio", *, level=RecordLevel.OFF, sched=None,
        n_tiles=6, record_trace=False, fault_model=None):
    machine = small_hetero(n_cpus=4, n_gpus=1, gpu_streams=1)
    sim = Simulator(
        machine.platform(),
        sched if sched is not None else make_scheduler(scheduler_name),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        record_trace=record_trace,
        record_level=level,
        fault_model=fault_model,
    )
    return sim, sim.run(cholesky_program(n_tiles, 512))


class TestZeroCost:
    def test_off_has_no_observability(self):
        sim, res = run(level=RecordLevel.OFF)
        assert sim.obs is None
        assert res.events is None and res.metrics is None

    def test_results_identical_across_levels(self):
        baseline = None
        for level in ("off", "tasks", "decisions"):
            _, res = run(level=level)
            key = (res.makespan, res.bytes_transferred, res.n_tasks)
            if baseline is None:
                baseline = key
            assert key == baseline, f"level {level} perturbed the simulation"

    def test_level_parse_on_simulator(self):
        machine = small_hetero(n_cpus=2, n_gpus=1)
        sim = Simulator(machine.platform(), make_scheduler("eager"),
                        AnalyticalPerfModel(machine.calibration()),
                        record_level="tasks")
        assert sim.record_level is RecordLevel.TASKS


class TestEventStream:
    def test_lifecycle_counts(self):
        _, res = run(level="tasks")
        by_type = {}
        for ev in res.events:
            by_type.setdefault(type(ev), []).append(ev)
        n = res.n_tasks
        assert len(by_type[TaskSubmit]) == n
        assert len(by_type[TaskReady]) == n
        assert len(by_type[TaskPop]) == n
        assert len(by_type[TaskStart]) == n
        assert len(by_type[TaskEnd]) == n
        assert DecisionEvent not in by_type  # tasks level only

    def test_times_monotonic(self):
        _, res = run(level="tasks")
        ts = [ev.t for ev in res.events]
        assert ts == sorted(ts)

    def test_transfers_have_real_sources(self):
        _, res = run(level="tasks")
        transfers = [ev for ev in res.events if isinstance(ev, TransferEvent)]
        assert transfers
        for ev in transfers:
            assert ev.src >= 0 and ev.dst >= 0 and ev.src != ev.dst
            assert ev.end >= ev.start
            assert ev.nbytes > 0

    def test_trace_records_have_real_sources(self):
        """Satellite fix: engine Trace transfers no longer carry src=-1."""
        _, res = run(level="off", record_trace=True)
        assert res.trace is not None and res.trace.transfer_records
        assert all(r.src >= 0 for r in res.trace.transfer_records)

    def test_event_trace_matches_engine_trace(self):
        sim, res = run(level="tasks", record_trace=True)
        rebuilt = trace_from_events(res.events, sim.platform.workers)
        assert rebuilt.makespan() == res.trace.makespan()
        assert len(rebuilt.task_records) == len(res.trace.task_records)
        by_tid = {r.tid: r for r in res.trace.task_records}
        for rec in rebuilt.task_records:
            orig = by_tid[rec.tid]
            assert (rec.worker, rec.start, rec.end) == (
                orig.worker, orig.start, orig.end)

    def test_idle_fractions_match_engine(self):
        sim, res = run(level="tasks")
        fracs = idle_fractions_from_events(res.events, sim.platform.workers)
        for arch, frac in res.idle_frac_by_arch.items():
            assert fracs[arch] == pytest.approx(frac, abs=1e-12)

    def test_metrics_snapshot(self):
        _, res = run(level="tasks")
        flat = res.metrics.as_dict()
        assert flat["tasks_completed"] == res.n_tasks
        assert flat["makespan_us"] == res.makespan
        assert any(k.startswith("link_bytes.") for k in flat)
        assert any(k.startswith("idle_frac.") for k in flat)


class TestDecisionProvenance:
    def test_multiprio_every_pop_has_a_decision(self):
        sched = MultiPrio()
        _, res = run(sched=sched, level="decisions")
        decisions = [ev for ev in res.events if isinstance(ev, DecisionEvent)]
        pops = [d for d in decisions if d.action == "pop"]
        assert len(pops) == res.n_tasks
        for d in pops:
            assert d.scheduler == "multiprio"
            assert d.pop_condition is True
            assert d.gain is not None and d.nod is not None
            assert d.ls_sdh2 is not None and d.delta is not None
            assert d.tid in d.candidates
            assert d.wid >= 0 and d.node >= 0

    def test_multiprio_rejections_match_stats(self):
        sched = MultiPrio()
        _, res = run(sched=sched, level="decisions")
        rejections = [ev for ev in res.events
                      if isinstance(ev, DecisionEvent)
                      and ev.action in ("skip", "evict")]
        stats = sched.stats()
        assert len(rejections) == stats["skips"] + stats["evictions"]
        for d in rejections:
            assert d.pop_condition is False
            assert d.delta is not None

    def test_evict_on_reject_labels_evictions(self):
        sched = MultiPrio(evict_on_reject=True)
        _, res = run(sched=sched, level="decisions")
        actions = {ev.action for ev in res.events
                   if isinstance(ev, DecisionEvent)}
        assert "skip" not in actions  # literal eviction mode

    def test_heap_depth_gauges_sampled(self):
        sim, res = run(level="decisions")
        gauges = {k for k in res.metrics.gauges if k.startswith("heap_depth.")}
        assert gauges
        for name in gauges:
            assert res.metrics.gauges[name]["n"] > 0

    def test_dmdas_decisions(self):
        _, res = run("dmdas", level="decisions")
        pops = [ev for ev in res.events
                if isinstance(ev, DecisionEvent) and ev.action == "pop"]
        assert len(pops) == res.n_tasks
        assert all(d.scheduler == "dmdas" for d in pops)
        assert all(d.locality_bytes is not None for d in pops)
        assert all(d.reason.startswith("priority:") for d in pops)

    def test_heteroprio_decisions(self):
        _, res = run("heteroprio", level="decisions")
        pops = [ev for ev in res.events
                if isinstance(ev, DecisionEvent) and ev.action == "pop"]
        assert len(pops) == res.n_tasks
        assert all(d.reason.startswith("bucket:") for d in pops)


class TestFaultEvents:
    def test_transient_faults_emit_events(self):
        model = FaultModel(task_failure_rate=0.3, max_retries=50, seed=1)
        _, res = run(level="tasks", fault_model=model)
        faults = [ev for ev in res.events if isinstance(ev, TaskFault)]
        retries = [ev for ev in res.events
                   if isinstance(ev, TaskRetryScheduled)]
        assert faults and retries
        assert res.faults.task_failures == len(faults)
        for ev in faults:
            assert ev.wasted_us >= 0 and ev.attempt >= 1

    def test_fault_results_identical_with_obs(self):
        spans = set()
        for level in ("off", "tasks"):
            model = FaultModel(task_failure_rate=0.3, max_retries=50, seed=1)
            _, res = run(level=level, fault_model=model)
            spans.add(res.makespan)
        assert len(spans) == 1

    def test_worker_death_event(self):
        model = FaultModel(worker_kills=[(0, 100.0)], seed=0)
        _, res = run(level="tasks", fault_model=model)
        deaths = [ev for ev in res.events if isinstance(ev, WorkerDeath)]
        assert len(deaths) == 1
        assert deaths[0].wid == 0 and deaths[0].t == pytest.approx(100.0)
