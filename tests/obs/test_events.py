"""Event taxonomy tests: levels, serialization, round-trips."""

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    DecisionEvent,
    Event,
    RecordLevel,
    TaskEnd,
    TaskPop,
    TransferEvent,
    event_from_dict,
)
from repro.utils.validation import ValidationError


class TestRecordLevel:
    def test_parse_names(self):
        assert RecordLevel.parse("off") is RecordLevel.OFF
        assert RecordLevel.parse("tasks") is RecordLevel.TASKS
        assert RecordLevel.parse("DECISIONS") is RecordLevel.DECISIONS
        assert RecordLevel.parse(" all ") is RecordLevel.ALL

    def test_parse_ints_and_members(self):
        assert RecordLevel.parse(2) is RecordLevel.DECISIONS
        assert RecordLevel.parse(RecordLevel.TASKS) is RecordLevel.TASKS

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValidationError):
            RecordLevel.parse("verbose")
        with pytest.raises(ValidationError):
            RecordLevel.parse(3.5)

    def test_ordering(self):
        assert RecordLevel.OFF < RecordLevel.TASKS < RecordLevel.DECISIONS


class TestSerialization:
    def test_to_dict_includes_kind(self):
        ev = TaskPop(t=1.5, tid=7, wid=2, staged=True)
        d = ev.to_dict()
        assert d["kind"] == "task_pop"
        assert d["tid"] == 7 and d["staged"] is True

    def test_tuples_become_lists(self):
        ev = DecisionEvent(
            t=0.0, scheduler="multiprio", action="pop", tid=1, candidates=(1, 2, 3)
        )
        assert ev.to_dict()["candidates"] == [1, 2, 3]

    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_registry_kinds_are_consistent(self, kind):
        assert EVENT_TYPES[kind].kind == kind

    def test_round_trip_every_kind(self):
        samples = [
            TaskEnd(t=9.0, tid=1, type_name="gemm", wid=0, node=1,
                    pop_time=1.0, start=2.0, end=9.0),
            TransferEvent(t=2.0, hid=3, src=0, dst=1, nbytes=4096,
                          start=2.0, end=3.0, prefetch=True),
            DecisionEvent(t=4.0, scheduler="multiprio", action="skip", tid=5,
                          gain=0.5, nod=0.1, pop_condition=False, brw=7.0,
                          delta=9.0, candidates=(5, 6)),
        ]
        for ev in samples:
            back = event_from_dict(ev.to_dict())
            assert back == ev
            assert type(back) is type(ev)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown event kind"):
            event_from_dict({"kind": "nope", "t": 0.0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError, match="does not accept"):
            event_from_dict({"kind": "task_pop", "t": 0.0, "tid": 1,
                             "wid": 0, "bogus": 1})

    def test_events_are_frozen(self):
        ev = TaskPop(t=0.0, tid=1, wid=0)
        with pytest.raises(AttributeError):
            ev.tid = 2

    def test_base_event_kind(self):
        assert Event.kind == "event"
        assert "event" not in EVENT_TYPES  # only concrete kinds importable
