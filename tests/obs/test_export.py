"""Exporter tests: JSONL round-trip, Chrome trace, golden files, analyses."""

import json
from pathlib import Path

import pytest

from repro.obs.events import (
    DecisionEvent,
    TaskEnd,
    TransferEvent,
    WorkerDeath,
)
from repro.obs.export import (
    decision_counts,
    events_from_jsonl,
    events_to_chrome,
    events_to_jsonl,
    idle_fractions_from_events,
    summary_report,
    trace_from_events,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime.task import Task
from repro.runtime.worker import Worker

GOLDEN_DIR = Path(__file__).parent


def make_workers():
    return [Worker(0, "cpu", 0, "cpu0"), Worker(1, "cuda", 1, "gpu0.s0")]


def small_stream():
    return [
        TaskEnd(t=10.0, tid=0, type_name="potrf", wid=1, node=1,
                pop_time=0.0, start=2.0, end=10.0),
        TransferEvent(t=0.0, hid=3, src=0, dst=1, nbytes=1024,
                      start=0.0, end=2.0),
        DecisionEvent(t=0.0, scheduler="multiprio", action="pop", tid=0,
                      type_name="potrf", wid=1, node=1, gain=1.0,
                      pop_condition=True),
        DecisionEvent(t=5.0, scheduler="multiprio", action="skip", tid=1,
                      wid=0, node=0, pop_condition=False, brw=1.0, delta=9.0),
    ]


class TestJsonl:
    def test_round_trip(self):
        events = small_stream()
        back = events_from_jsonl(events_to_jsonl(events))
        assert back == events

    def test_empty(self):
        assert events_to_jsonl([]) == ""
        assert events_from_jsonl("") == []

    def test_blank_lines_skipped(self):
        text = events_to_jsonl(small_stream())
        assert events_from_jsonl("\n" + text + "\n\n") == small_stream()


class TestChrome:
    def test_loads_and_has_tracks(self):
        doc = json.loads(events_to_chrome(small_stream(),
                                          workers=make_workers()))
        evs = doc["traceEvents"]
        phases = {e["ph"] for e in evs}
        assert "X" in phases and "i" in phases and "M" in phases
        names = {e["args"]["name"] for e in evs if e["ph"] == "M"}
        assert "workers" in names and "links" in names
        assert "link 0->1" in names

    def test_counter_track_from_gauges(self):
        metrics = MetricsRegistry()
        metrics.gauge("heap_depth.node0").set(3.0, 1.0)
        doc = json.loads(events_to_chrome([], metrics=metrics))
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters and counters[0]["name"] == "heap_depth.node0"
        assert counters[0]["args"]["value"] == 3.0

    def test_data_wait_slice(self):
        doc = json.loads(events_to_chrome(small_stream()))
        waits = [e for e in doc["traceEvents"] if e["name"] == "data wait"]
        assert len(waits) == 1 and waits[0]["dur"] == pytest.approx(2.0)

    def test_decision_instants_carry_provenance(self):
        doc = json.loads(events_to_chrome(small_stream()))
        skips = [e for e in doc["traceEvents"]
                 if e["ph"] == "i" and e["name"].endswith(":skip")]
        assert skips and skips[0]["args"]["brw"] == 1.0
        assert skips[0]["args"]["pop_condition"] is False


class TestGoldenFiles:
    """The checked-in fixtures pin the wire formats."""

    def test_golden_jsonl_round_trips(self):
        text = (GOLDEN_DIR / "golden_events.jsonl").read_text()
        events = events_from_jsonl(text)
        assert len(events) == 19
        assert events_to_jsonl(events) == text

    def test_golden_chrome_matches_exporter(self):
        events = events_from_jsonl(
            (GOLDEN_DIR / "golden_events.jsonl").read_text())
        workers = make_workers()
        metrics = MetricsRegistry()
        g = metrics.gauge("heap_depth.node1")
        for t, v in ((0.0, 1.0), (0.5, 0.0), (190.0, 1.0), (191.0, 0.0)):
            g.set(v, t)
        produced = events_to_chrome(events, workers=workers, metrics=metrics)
        golden = (GOLDEN_DIR / "golden_chrome.json").read_text()
        assert json.loads(produced) == json.loads(golden)

    def test_golden_chrome_is_loadable(self):
        doc = json.loads((GOLDEN_DIR / "golden_chrome.json").read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        for ev in doc["traceEvents"]:
            assert "ph" in ev and "pid" in ev
            if ev["ph"] == "X":
                assert ev["dur"] >= 0 and "ts" in ev


class TestAnalyses:
    def test_trace_from_events(self):
        trace = trace_from_events(small_stream(), make_workers())
        assert len(trace.task_records) == 1
        assert trace.makespan() == 10.0
        assert trace.transfer_records[0].src == 0
        assert trace.record_of(0).type_name == "potrf"

    def test_idle_fractions_match_trace_formula(self):
        events = small_stream()
        fracs = idle_fractions_from_events(events, make_workers())
        # gpu occupied 10/10 (incl. wait), cpu fully idle
        assert fracs["cuda"] == pytest.approx(0.0)
        assert fracs["cpu"] == pytest.approx(1.0)

    def test_idle_fractions_empty(self):
        fracs = idle_fractions_from_events([], make_workers())
        assert fracs == {"cpu": 0.0, "cuda": 0.0}

    def test_decision_counts(self):
        assert decision_counts(small_stream()) == {"pop": 1, "skip": 1}

    def test_summary_report_sections(self):
        t0 = Task(0, "potrf")
        report = summary_report(small_stream(), workers=make_workers(),
                                tasks=[t0])
        assert "makespan 10.0 us" in report
        assert "gpu0.s0" in report
        assert "scheduler decisions: pop=1, skip=1" in report
        assert "practical critical path" in report

    def test_summary_report_without_tasks(self):
        report = summary_report(small_stream(), workers=make_workers())
        assert "practical critical path" not in report

    def test_summary_report_handles_death_events(self):
        events = small_stream() + [WorkerDeath(t=20.0, wid=0, name="cpu0")]
        assert "makespan" in summary_report(events, workers=make_workers())
