"""Event-bus and Observability façade tests."""

from repro.obs.bus import EventBus, Observability
from repro.obs.events import RecordLevel, TaskPop, TaskReady


class TestEventBus:
    def test_global_subscriber_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(TaskReady(t=0.0, tid=1, type_name="k"))
        bus.emit(TaskPop(t=1.0, tid=1, wid=0))
        assert [type(e).__name__ for e in seen] == ["TaskReady", "TaskPop"]

    def test_kind_filter(self):
        bus = EventBus()
        pops = []
        bus.subscribe(pops.append, kinds=["task_pop"])
        bus.emit(TaskReady(t=0.0, tid=1, type_name="k"))
        bus.emit(TaskPop(t=1.0, tid=1, wid=0))
        assert len(pops) == 1 and isinstance(pops[0], TaskPop)

    def test_kind_specific_before_global(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("global"))
        bus.subscribe(lambda e: order.append("kind"), kinds=["task_pop"])
        bus.emit(TaskPop(t=0.0, tid=1, wid=0))
        assert order == ["kind", "global"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.emit(TaskPop(t=0.0, tid=1, wid=0))
        assert seen == []


class TestObservability:
    def test_level_predicates(self):
        assert not Observability(RecordLevel.TASKS).decisions
        assert Observability(RecordLevel.TASKS).enabled
        assert Observability("decisions").decisions
        assert not Observability(RecordLevel.OFF).enabled

    def test_events_retained(self):
        obs = Observability("tasks")
        obs.emit(TaskPop(t=0.0, tid=1, wid=0))
        assert len(obs.events) == 1

    def test_keep_events_false(self):
        obs = Observability("tasks", keep_events=False)
        obs.emit(TaskPop(t=0.0, tid=1, wid=0))
        assert obs.events == []
        # metrics still collected
        obs.emit(TaskPop(t=1.0, tid=2, wid=0))
        assert obs.metrics.snapshot().counters == {}  # pops carry no counter

    def test_begin_run_resets(self):
        class W:
            def __init__(self, wid, arch):
                self.wid, self.arch = wid, arch

        class P:
            workers = [W(0, "cpu")]

        obs = Observability("tasks")
        obs.emit(TaskPop(t=0.0, tid=1, wid=0))
        obs.metrics.counter("junk").inc()
        obs.begin_run(P())
        assert obs.events == []
        assert obs.metrics.snapshot().counters == {}

    def test_snapshot_derives_makespan(self):
        obs = Observability("tasks")
        snap = obs.snapshot(42.0)
        assert snap.derived["makespan_us"] == 42.0
