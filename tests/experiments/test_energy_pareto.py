"""Energy Pareto sweep: cap derivation, dominance marking, the grid."""

from __future__ import annotations

import json

import pytest

from repro.experiments.energy_pareto import (
    EnergyExperimentResult,
    EnergyRow,
    energy_report,
    energy_workload,
    format_energy_experiment,
    mark_pareto,
    node_caps_for,
    run_energy_experiment,
    write_energy_report,
)
from repro.platform.machines import MACHINES
from repro.runtime.power import PowerLedger, PowerStateModel


def make_row(scheduler, cap_fraction, makespan_us, total_j, **kw):
    defaults = dict(
        cap_watts=None, busy_energy_j=total_j * 0.6,
        jobs_energy_j=total_j * 0.5, mean_latency_us=makespan_us / 4,
        mean_edp_j_s=1.0, fairness=0.9, n_throttled=0,
        throttle_delay_us=0.0, n_jobs=8,
    )
    defaults.update(kw)
    return EnergyRow(
        scheduler=scheduler, cap_fraction=cap_fraction,
        makespan_us=makespan_us, total_energy_j=total_j, **defaults,
    )


class TestNodeCaps:
    @pytest.mark.parametrize("fraction", [0.8, 0.6, 0.1])
    def test_caps_always_validate(self, fraction):
        """Any fraction — even one far below the DVFS floor — must yield
        a mapping the ledger accepts (the feasibility clamp)."""
        caps = node_caps_for("small-hetero", fraction)
        platform = MACHINES["small-hetero"]().platform()
        assert set(caps) == {node.mid for node in platform.nodes}
        PowerLedger(PowerStateModel(node_cap_watts=caps), platform)

    def test_caps_scale_with_fraction(self):
        loose = node_caps_for("small-hetero", 0.9)
        tight = node_caps_for("small-hetero", 0.5)
        assert all(tight[mid] <= loose[mid] for mid in loose)


class TestMarkPareto:
    def test_frontier_and_dominated(self):
        rows = [
            make_row("a", None, 100.0, 10.0),   # frontier (best makespan)
            make_row("b", None, 120.0, 8.0),    # frontier (best joules)
            make_row("c", None, 130.0, 9.0),    # dominated by b
        ]
        mark_pareto(rows)
        assert [r.pareto for r in rows] == [True, True, False]

    def test_duplicate_rows_both_survive(self):
        rows = [make_row("a", None, 100.0, 10.0),
                make_row("b", None, 100.0, 10.0)]
        mark_pareto(rows)
        assert all(r.pareto for r in rows)


class TestDominatingRows:
    def result_with(self, rows):
        return EnergyExperimentResult(
            machine="small-hetero", n_tenants=2, n_jobs=8, seed=0,
            load=1.5, rate_jobs_per_s=10.0, rows=rows,
        )

    def test_acceptance_property_shape(self):
        base = make_row("multiprio", None, 100.0, 10.0)
        winner = make_row("multiprio-energy", None, 105.0, 9.0)
        too_slow = make_row("multiprio-edp", None, 120.0, 8.0)
        not_energy_aware = make_row("eager", None, 100.0, 5.0)
        res = self.result_with([base, winner, too_slow, not_energy_aware])
        assert res.baseline_row() is base
        assert res.dominating_rows() == [winner]
        assert res.dominating_rows(makespan_slack=0.25) == [winner, too_slow]

    def test_no_baseline_no_verdict(self):
        res = self.result_with([make_row("eager", None, 100.0, 5.0)])
        assert res.baseline_row() is None
        assert res.dominating_rows() == []
        assert "no uncapped multiprio baseline" in format_energy_experiment(res)


class TestEnergyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_energy_experiment(
            schedulers=("multiprio", "multiprio-energy"),
            cap_fractions=(None, 0.6),
            n_tenants=2,
            n_jobs=6,
            check_invariants=True,
        )

    def test_grid_shape(self, result):
        assert len(result.rows) == 4
        assert {(r.scheduler, r.cap_fraction) for r in result.rows} == {
            ("multiprio", None), ("multiprio", 0.6),
            ("multiprio-energy", None), ("multiprio-energy", 0.6),
        }

    def test_rows_are_physical(self, result):
        for row in result.rows:
            assert row.total_energy_j > row.busy_energy_j > 0
            assert 0.0 < row.jobs_energy_j <= row.total_energy_j + 1e-9
            assert row.makespan_us > 0 and row.n_jobs == 6
            assert 0.0 < row.fairness <= 1.0
            if row.cap_fraction is None:
                assert row.n_throttled == 0 and row.cap_watts is None
            else:
                assert row.cap_watts

    def test_caps_bind(self, result):
        """The 0.6x cap level must actually intervene somewhere."""
        assert any(
            r.n_throttled > 0 for r in result.rows if r.cap_fraction == 0.6
        )

    def test_format_marks_pareto(self, result):
        text = format_energy_experiment(result)
        assert "* " in text and "energy pareto on small-hetero" in text
        assert any(r.pareto for r in result.rows)

    def test_report_round_trip(self, result, tmp_path):
        path = tmp_path / "energy.json"
        write_energy_report(result, str(path))
        doc = json.loads(path.read_text())
        assert doc == energy_report(result)
        assert doc["experiment"] == "energy" and len(doc["rows"]) == 4
        for row in doc["rows"]:
            assert row["per_tenant"]  # per-tenant joules serialized

    def test_parallel_dispatch_is_bit_identical(self, result):
        twin = run_energy_experiment(
            schedulers=("multiprio", "multiprio-energy"),
            cap_fractions=(None, 0.6),
            n_tenants=2,
            n_jobs=6,
            jobs=2,
        )
        assert [
            (r.scheduler, r.cap_fraction, r.makespan_us, r.total_energy_j)
            for r in twin.rows
        ] == [
            (r.scheduler, r.cap_fraction, r.makespan_us, r.total_energy_j)
            for r in result.rows
        ]


def test_energy_workload_shape():
    stream = energy_workload(rate_jobs_per_s=50.0, n_tenants=3, n_jobs=9)
    assert len(stream.jobs) == 9
    assert len(stream.tenants) == 3
