"""Smoke + shape tests for the figure-level experiments (small scales)."""

import pytest

from repro.experiments.fig4_eviction import format_fig4, run_fig4
from repro.experiments.fig5_dense import format_fig5, run_fig5
from repro.experiments.fig6_fmm import format_fig6, run_fig6
from repro.experiments.fig7_matrices import format_fig7, run_fig7
from repro.experiments.fig8_sparseqr import format_fig8, run_fig8
from repro.apps.sparseqr import matrix_by_name
from repro.platform.machines import intel_v100


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(n_tiles=12, tile_size=960)

    def test_eviction_reduces_gpu_idle(self, result):
        assert result.with_eviction.gpu_idle_frac < result.without_eviction.gpu_idle_frac

    def test_eviction_improves_makespan(self, result):
        assert result.with_eviction.makespan_us <= result.without_eviction.makespan_us

    def test_format(self, result):
        text = format_fig4(result, gantt=True)
        assert "with eviction" in text and "without eviction" in text
        assert "|" in text  # gantt rows


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(
            kernels=("potrf",),
            machines=[intel_v100(1)],
            matrix_sizes=(7680,),
            tile_sizes={"intel-v100": (1280,)},
        )

    def test_cells_complete(self, result):
        assert len(result.cells) == 1
        cell = result.cells[0]
        assert cell.multiprio_us > 0 and cell.dmdas_us > 0
        assert cell.best_tile_multiprio == 1280

    def test_format(self, result):
        assert "gain" in format_fig5(result)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(
            n_particles=20_000,
            height=4,
            stream_counts=(1, 2),
            machines=("intel-v100",),
        )

    def test_grid_size(self, result):
        assert len(result.cells) == 3 * 2

    def test_best_and_winner(self, result):
        best = result.best("intel-v100", "multiprio")
        assert best.makespan_us > 0
        assert result.winner("intel-v100") in ("multiprio", "dmdas", "heteroprio")

    def test_format(self, result):
        assert "shortest makespan" in format_fig6(result)


class TestFig7:
    def test_all_matrices_synthesized(self):
        rows = run_fig7(scale=0.02)
        assert len(rows) == 10
        for row in rows:
            assert row.n_fronts > 50
            assert row.flop_error < 0.6  # min-dims floor the tiny scales

    def test_format_includes_published_columns(self):
        text = format_fig7(run_fig7(scale=0.02))
        assert "Rucci1" in text and "mk13-b5" in text
        assert "1,977,885" in text or "1977885" in text


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(
            matrices=[matrix_by_name("cat_ears_4_4"), matrix_by_name("e18")],
            scale=0.02,
            machines=("intel-v100",),
        )

    def test_ratios_positive(self, result):
        for cell in result.cells:
            for sched in cell.makespans_us:
                assert cell.ratio(sched) > 0
            assert cell.ratio("dmdas") == pytest.approx(1.0)

    def test_mean_ratio(self, result):
        assert result.mean_ratio("intel-v100", "multiprio") > 0

    def test_format(self, result):
        text = format_fig8(result)
        assert "multiprio / dmdas" in text
