"""Experiment harness and reporting tests."""

import pytest

from repro.experiments.harness import run_grid, run_one, speedup_table
from repro.experiments.reporting import format_series, format_table
from repro.platform.machines import small_hetero
from tests.conftest import make_fork_join_program


@pytest.fixture(scope="module")
def grid_rows():
    program = make_fork_join_program(width=8, flops=5e7)
    machine = small_hetero(n_cpus=2, n_gpus=1)
    return run_grid(
        [program], [machine], ["eager", "dmdas", "multiprio"], experiment="t"
    )


class TestHarness:
    def test_run_one_returns_row_and_simresult(self):
        program = make_fork_join_program(width=4)
        machine = small_hetero(n_cpus=2, n_gpus=1)
        row, res = run_one(program, machine, "eager", experiment="x", seed=1)
        assert row.scheduler == "eager"
        assert row.machine == machine.name
        assert row.makespan_us == res.makespan > 0

    def test_grid_covers_cartesian_product(self, grid_rows):
        assert len(grid_rows) == 3
        assert {r.scheduler for r in grid_rows} == {"eager", "dmdas", "multiprio"}

    def test_speedup_table_reference(self, grid_rows):
        table = speedup_table(grid_rows, reference="dmdas")
        ((_, ratios),) = table.items()
        assert ratios["dmdas"] == pytest.approx(1.0)
        assert all(r > 0 for r in ratios.values())

    def test_speedup_missing_reference(self, grid_rows):
        assert speedup_table(grid_rows, reference="nonexistent") == {}

    def test_determinism_across_calls(self):
        program = make_fork_join_program(width=6)
        machine = small_hetero(n_cpus=2, n_gpus=1)
        row1, _ = run_one(program, machine, "multiprio", seed=5, noise_sigma=0.2)
        row2, _ = run_one(program, machine, "multiprio", seed=5, noise_sigma=0.2)
        assert row1.makespan_us == row2.makespan_us


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [300, 4.123]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[2:])

    def test_format_series(self):
        text = format_series("makespan", ["x1", "x2"], [1.0, 2.0], unit="ms")
        assert "makespan [ms]" in text
        assert "x2" in text
