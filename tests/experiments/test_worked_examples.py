"""Tests for the Table II / Fig. 3 worked-example experiments."""

import pytest

from repro.experiments.fig3_nod import format_fig3, run_fig3
from repro.experiments.table2_gain import format_table2, run_table2


class TestTable2:
    def test_reproduces_published_gains(self):
        result = run_table2()
        assert result.max_abs_error < 1e-3

    def test_format_contains_both_rows(self):
        text = format_table2(run_table2())
        assert "ours" in text and "paper" in text
        assert "0.631" in text and "0.763" in text


class TestFig3:
    def test_reproduces_published_nod(self):
        result = run_fig3()
        assert result.nod_t2 == pytest.approx(2.5)
        assert result.nod_t3 == pytest.approx(1.0)

    def test_format(self):
        text = format_fig3(run_fig3())
        assert "2.5" in text and "1.0" in text
