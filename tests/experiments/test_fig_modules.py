"""Unit-level tests of the figure experiment modules (no heavy sims)."""

import pytest

from repro.experiments.fig5_dense import KERNELS, TILE_SIZES, Fig5Cell
from repro.experiments.fig6_fmm import Fig6Cell, Fig6Result
from repro.experiments.fig8_sparseqr import Fig8Cell, Fig8Result


class TestFig5Units:
    def test_kernel_map_covers_paper_routines(self):
        assert set(KERNELS) == {"potrf", "getrf", "geqrf"}

    def test_paper_tile_sets(self):
        assert TILE_SIZES["intel-v100"] == (640, 1280, 2560)
        assert TILE_SIZES["amd-a100"] == (960, 1920, 3840)

    def test_gain_metric_sign(self):
        cell = Fig5Cell("m", "potrf", 1000, multiprio_us=80.0, dmdas_us=100.0,
                        best_tile_multiprio=960, best_tile_dmdas=1920)
        assert cell.gain_over_dmdas == pytest.approx(0.25)
        cell2 = Fig5Cell("m", "potrf", 1000, multiprio_us=125.0, dmdas_us=100.0,
                         best_tile_multiprio=960, best_tile_dmdas=1920)
        assert cell2.gain_over_dmdas == pytest.approx(-0.2)


class TestFig6Units:
    def make(self):
        result = Fig6Result()
        for sched, spans in (("a", (10, 6, 8)), ("b", (9, 7, 7.5))):
            for streams, span in zip((1, 2, 4), spans):
                result.cells.append(Fig6Cell("m", sched, streams, span))
        return result

    def test_best_picks_min_over_streams(self):
        result = self.make()
        assert result.best("m", "a").makespan_us == 6
        assert result.best("m", "a").gpu_streams == 2

    def test_winner(self):
        assert self.make().winner("m") == "a"


class TestFig8Units:
    def test_ratio_definition(self):
        cell = Fig8Cell("m", "x", 100.0,
                        makespans_us={"dmdas": 200.0, "multiprio": 100.0})
        assert cell.ratio("multiprio") == pytest.approx(2.0)
        assert cell.ratio("dmdas") == pytest.approx(1.0)

    def test_mean_ratio_per_machine(self):
        result = Fig8Result()
        result.cells.append(
            Fig8Cell("m1", "x", 1.0, makespans_us={"dmdas": 100.0, "multiprio": 50.0})
        )
        result.cells.append(
            Fig8Cell("m1", "y", 2.0, makespans_us={"dmdas": 100.0, "multiprio": 200.0})
        )
        result.cells.append(
            Fig8Cell("m2", "x", 1.0, makespans_us={"dmdas": 100.0, "multiprio": 100.0})
        )
        assert result.mean_ratio("m1", "multiprio") == pytest.approx((2.0 + 0.5) / 2)
        assert result.mean_ratio("m2", "multiprio") == pytest.approx(1.0)
