"""Sweep engine tests: serial/parallel bit-identity, failure semantics,
crash recovery and deterministic seed fan-out.

The determinism contract is the load-bearing one: ``jobs=N`` must return
*exactly* the rows ``jobs=1`` returns — same values, same order — so
parallelism can never change a reproduction's numbers.
"""

import os

import pytest

from repro.apps.dense import cholesky_program, lu_program
from repro.platform.machines import small_hetero
from repro.sweep import (
    CallSpec,
    SweepCell,
    SweepSpec,
    fanout_seeds,
    run_sweep,
    run_tasks,
)
from repro.utils.validation import RetryExhaustedError, ValidationError


def _square(x):
    return x * x


def _fail_on(x, bad):
    if x in bad:
        raise ValidationError(f"cell {x} bad")
    return x


_CRASH_FLAG = "/tmp/repro_sweep_crash_once"


def _crash_once(x):
    """os._exit kills the worker the first time cell 3 runs — a genuine
    process crash, not an exception."""
    if x == 3 and not os.path.exists(_CRASH_FLAG):
        open(_CRASH_FLAG, "w").close()
        os._exit(1)
    return x


def _crash_always(x):
    if x == 1:
        os._exit(1)
    return x


class TestRunTasks:
    def test_empty(self):
        assert run_tasks([]) == []
        assert run_tasks([], jobs=4) == []

    def test_order_preserved_any_jobs(self):
        tasks = [CallSpec(_square, (i,)) for i in range(17)]
        expected = [i * i for i in range(17)]
        assert run_tasks(tasks, jobs=1) == expected
        assert run_tasks(tasks, jobs=3, chunk_size=2) == expected

    def test_progress_counts_every_cell(self):
        calls = []
        run_tasks(
            [CallSpec(_square, (i,)) for i in range(6)],
            jobs=2,
            chunk_size=2,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert sorted(calls) == [(i, 6) for i in range(1, 7)]

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_lowest_index_error_raised(self, jobs):
        tasks = [CallSpec(_fail_on, (i, (3, 7))) for i in range(10)]
        with pytest.raises(ValidationError, match="cell 3 bad"):
            run_tasks(tasks, jobs=jobs, chunk_size=2)

    def test_crash_retried_on_fresh_pool(self):
        if os.path.exists(_CRASH_FLAG):
            os.remove(_CRASH_FLAG)
        try:
            out = run_tasks(
                [CallSpec(_crash_once, (i,)) for i in range(6)],
                jobs=2,
                chunk_size=2,
            )
            assert out == list(range(6))
        finally:
            if os.path.exists(_CRASH_FLAG):
                os.remove(_CRASH_FLAG)

    def test_persistent_crash_exhausts_retries(self):
        tasks = [CallSpec(_crash_always, (i,)) for i in range(3)]
        with pytest.raises(RetryExhaustedError, match="crashed the worker pool"):
            run_tasks(tasks, jobs=2, chunk_size=1, crash_retries=1)


class TestFanoutSeeds:
    def test_deterministic_and_distinct(self):
        seeds = fanout_seeds(0, 8)
        assert seeds == fanout_seeds(0, 8)
        assert len(set(seeds)) == 8
        assert seeds != fanout_seeds(1, 8)

    def test_prefix_stable(self):
        """Growing the replicate count keeps the existing seeds."""
        assert fanout_seeds(42, 4) == fanout_seeds(42, 8)[:4]


def _tiny_spec() -> SweepSpec:
    machine = small_hetero(n_cpus=4, n_gpus=1)
    return SweepSpec.grid(
        "tiny",
        programs=[
            CallSpec(cholesky_program, (4, 512)),
            CallSpec(lu_program, (3, 512)),
        ],
        machines=[machine],
        schedulers=("multiprio", "dmdas"),
        seeds=(0, 1),
        noise_sigma=0.1,
    )


class TestRunSweep:
    def test_parallel_bit_identical_to_serial(self):
        """The PR's acceptance property, at test scale: every field of
        every row identical between jobs=1 and jobs=2."""
        spec = _tiny_spec()
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=2, chunk_size=1)
        assert serial == parallel
        assert [r.makespan_us for r in serial] == [r.makespan_us for r in parallel]

    def test_grid_order_and_shape(self):
        spec = _tiny_spec()
        assert len(spec.cells) == 8  # 1 machine x 2 programs x 2 scheds x 2 seeds
        rows = run_sweep(spec)
        assert [r.scheduler for r in rows[:4]] == [
            "multiprio", "multiprio", "dmdas", "dmdas",
        ]
        assert all(r.experiment == "tiny" for r in rows)
        assert rows[0].workload.startswith("potrf")
        assert rows[4].workload.startswith("getrf")

    def test_int_seed_count_fans_out(self):
        machine = small_hetero(n_cpus=2, n_gpus=1)
        spec = SweepSpec.grid(
            "fan",
            programs=[CallSpec(cholesky_program, (3, 512))],
            machines=[machine],
            schedulers=("multiprio",),
            seeds=3,
            noise_sigma=0.2,
        )
        assert [c.seed for c in spec.cells] == fanout_seeds(0, 3)
        rows = run_sweep(spec)
        # Independent seeds under noise give distinct makespans.
        assert len({r.makespan_us for r in rows}) == 3

    def test_sweep_cell_extra_propagates(self):
        machine = small_hetero(n_cpus=2, n_gpus=1)
        cell = SweepCell(
            program=CallSpec(cholesky_program, (3, 512)),
            machine=machine,
            scheduler="multiprio",
            extra={"tile": 512},
        )
        rows = run_sweep(SweepSpec("meta", [cell]))
        assert rows[0].extra["tile"] == 512


class TestExperimentJobsIndependence:
    def test_fig7_parallel_matches_serial(self):
        from repro.experiments.fig7_matrices import run_fig7

        serial = run_fig7(scale=0.05, jobs=1)
        parallel = run_fig7(scale=0.05, jobs=2)
        assert serial == parallel

    def test_fig5_parallel_matches_serial(self):
        from repro.experiments.fig5_dense import run_fig5

        kwargs = dict(
            kernels=("potrf",),
            matrix_sizes=(2560,),
            schedulers=("multiprio", "dmdas"),
        )
        serial = run_fig5(jobs=1, **kwargs)
        parallel = run_fig5(jobs=2, **kwargs)
        assert serial.cells == parallel.cells
