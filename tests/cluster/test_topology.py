"""The instantiated fabric: routing, transfers and node independence."""

import pytest

from repro.cluster.spec import (
    ClusterNodeSpec,
    ClusterSpec,
    InterLinkSpec,
    fat_tree_cluster,
    star_cluster,
)
from repro.cluster.topology import Cluster
from repro.platform.machines import MACHINES
from repro.utils.validation import ValidationError


def test_star_routes_are_two_hops():
    clus = Cluster(star_cluster(4))
    assert clus.hops("node0", "node3") == 2
    assert clus.hops("node0", "node0") == 0
    route = clus.route("node1", "node2")
    assert [clus.vertex_name(link.dst) for link in route] == ["sw0", "node2"]


def test_fat_tree_locality_gradient():
    clus = Cluster(fat_tree_cluster(8, pod_size=4))
    assert clus.hops("node0", "node1") == 2  # intra-pod via edge0
    assert clus.hops("node0", "node5") == 4  # cross-pod via core


def test_unreachable_pair_rejected():
    mach = MACHINES["small-hetero"]()
    spec = ClusterSpec(
        name="split",
        nodes=(ClusterNodeSpec("a", mach), ClusterNodeSpec("b", mach)),
        links=(InterLinkSpec("a", "b", 10.0),),  # no way back
    )
    with pytest.raises(ValidationError, match="no route"):
        Cluster(spec)


def test_wire_duration_accumulates_hops():
    clus = Cluster(star_cluster(2, bandwidth_gbps=10.0, latency_us=50.0))
    one_hop = next(iter(clus.inter_links())).duration(10_000_000)
    assert clus.wire_duration("node0", "node1", 10_000_000) == pytest.approx(
        2 * one_hop
    )


def test_transfer_charge_records_traffic_and_estimate_does_not():
    clus = Cluster(star_cluster(2))
    t0 = clus.transfer_estimate("node0", "node1", 1_000_000, now=0.0)
    assert t0 > 0.0
    assert all(s["bytes_moved"] == 0 for s in clus.link_stats())
    arrive = clus.transfer_charge("node0", "node1", 1_000_000, now=0.0)
    assert arrive == pytest.approx(t0)  # first transfer sees empty queues
    moved = {(s["src"], s["dst"]): s["bytes_moved"] for s in clus.link_stats()}
    assert moved[("node0", "sw0")] == 1_000_000
    assert moved[("sw0", "node1")] == 1_000_000
    clus.reset_runtime_state()
    assert all(s["bytes_moved"] == 0 for s in clus.link_stats())


def test_queued_fabric_delays_next_transfer():
    clus = Cluster(star_cluster(2))
    first = clus.transfer_charge("node0", "node1", 50_000_000, now=0.0)
    second = clus.transfer_charge("node0", "node1", 50_000_000, now=0.0)
    assert second > first


def test_node_lookups():
    clus = Cluster(star_cluster(3))
    assert clus.n_nodes == 3
    assert clus.node_index("node1") == 1
    assert clus.n_workers_of("node0") > 0
    assert "cpu" in clus.archs_of("node0")


class TestNodeIndependence:
    """Satellite: per-node platforms/calibrations share no mutable state."""

    def test_perfmodels_are_per_node(self):
        clus = Cluster(star_cluster(2))
        pm0 = clus.perfmodel_of("node0")
        pm1 = clus.perfmodel_of("node1")
        assert pm0 is not pm1
        assert pm0.table is not pm1.table
        assert clus.perfmodel_of("node0") is pm0  # cached per node

    def test_machine_model_builds_fresh_platform_per_call(self):
        mach = MACHINES["small-hetero"]()
        assert mach.platform() is not mach.platform()
        assert mach.calibration() is not mach.calibration()

    def test_heterogeneous_nodes_do_not_cross_poison_estimates(self):
        """Shared task objects estimated by two nodes' models must not
        poison each other through the per-task estimate cache: a
        cluster mixing machine models sees each node's own numbers."""
        from repro.apps.dense import cholesky_program

        mach_a = MACHINES["small-hetero"]()
        mach_b = MACHINES["amd-a100"]()  # distinct CPU calibration
        spec = ClusterSpec(
            name="mixed",
            nodes=(ClusterNodeSpec("a", mach_a), ClusterNodeSpec("b", mach_b)),
            links=(
                InterLinkSpec("a", "b", 10.0),
                InterLinkSpec("b", "a", 10.0),
            ),
        )
        clus = Cluster(spec)
        task = cholesky_program(2, 512).tasks[0]
        est_a = clus.perfmodel_of("a").estimate(task, "cpu")
        est_b = clus.perfmodel_of("b").estimate(task, "cpu")
        assert est_a != est_b
        # Re-querying in either order returns each node's own estimate.
        assert clus.perfmodel_of("a").estimate(task, "cpu") == est_a
        assert clus.perfmodel_of("b").estimate(task, "cpu") == est_b
