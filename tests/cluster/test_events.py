"""Cluster provenance events: registration, round-trip and emission."""

from repro.apps.dense import cholesky_program
from repro.cluster import simulate_cluster, star_cluster
from repro.obs.events import EVENT_TYPES, JobPlaced, NodeLoad, event_from_dict
from repro.workload.stream import poisson_stream


def test_cluster_events_registered():
    assert EVENT_TYPES["job_placed"] is JobPlaced
    assert EVENT_TYPES["node_load"] is NodeLoad


def test_round_trip():
    placed = JobPlaced(
        t=3.0, jid=4, tenant="t0", node="node2", policy="locality-aware",
        est_work_us=1200.0, reason="co-located", scores=(5.0, 6.0, 1.0),
    )
    load = NodeLoad(t=3.0, node="node2", n_jobs=2, backlog_us=40.0,
                    avail_until=43.0)
    for ev in (placed, load):
        back = event_from_dict(ev.to_dict())
        assert type(back) is type(ev)
        assert back.to_dict() == ev.to_dict()


def test_simulation_emits_placement_provenance():
    stream = poisson_stream(
        [lambda: cholesky_program(3, 512)],
        rate_jobs_per_s=100.0, n_jobs=5, seed=1,
    )
    res = simulate_cluster(stream, star_cluster(3))
    placed = [e for e in res.events if isinstance(e, JobPlaced)]
    loads = [e for e in res.events if isinstance(e, NodeLoad)]
    assert len(placed) == 5 and len(loads) == 5
    assert [e.jid for e in placed] == [0, 1, 2, 3, 4]
    for ev in placed:
        assert ev.node == res.placements[ev.jid].node
        assert ev.policy == "load-aware"
        assert len(ev.scores) == 3
