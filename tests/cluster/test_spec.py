"""Cluster topology specs: typed validation and the fabric presets."""

import math

import pytest

from repro.cluster.spec import (
    ClusterNodeSpec,
    ClusterSpec,
    InterLinkSpec,
    fat_tree_cluster,
    star_cluster,
)
from repro.platform.machines import MACHINES
from repro.utils.validation import ValidationError


def _machine():
    return MACHINES["small-hetero"]()


def _nodes(n):
    mach = _machine()
    return tuple(ClusterNodeSpec(f"node{i}", mach) for i in range(n))


class TestValidation:
    def test_empty_cluster_rejected(self):
        with pytest.raises(ValidationError, match="no nodes"):
            ClusterSpec(name="empty", nodes=())

    def test_empty_node_name_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            ClusterNodeSpec("", _machine())

    def test_duplicate_node_names_rejected(self):
        mach = _machine()
        with pytest.raises(ValidationError, match="duplicate node name"):
            ClusterSpec(
                name="dup",
                nodes=(ClusterNodeSpec("a", mach), ClusterNodeSpec("a", mach)),
            )

    def test_switch_colliding_with_node_rejected(self):
        with pytest.raises(ValidationError, match="both a node and a switch"):
            ClusterSpec(name="c", nodes=_nodes(2), switches=("node0",))

    @pytest.mark.parametrize("bandwidth", [0.0, -1.0, math.inf, math.nan])
    def test_bad_bandwidth_rejected(self, bandwidth):
        with pytest.raises(ValidationError, match="bandwidth"):
            InterLinkSpec("a", "b", bandwidth_gbps=bandwidth)

    @pytest.mark.parametrize("latency", [-1.0, math.inf, math.nan])
    def test_bad_latency_rejected(self, latency):
        with pytest.raises(ValidationError, match="latency"):
            InterLinkSpec("a", "b", bandwidth_gbps=10.0, latency_us=latency)

    def test_self_loop_link_rejected(self):
        with pytest.raises(ValidationError, match="must differ"):
            InterLinkSpec("a", "a", bandwidth_gbps=10.0)

    def test_dangling_link_endpoint_rejected(self):
        with pytest.raises(ValidationError, match="unknown vertex"):
            ClusterSpec(
                name="c",
                nodes=_nodes(2),
                links=(InterLinkSpec("node0", "ghost", 10.0),),
            )

    def test_duplicate_directed_link_rejected(self):
        with pytest.raises(ValidationError, match="duplicate link"):
            ClusterSpec(
                name="c",
                nodes=_nodes(2),
                links=(
                    InterLinkSpec("node0", "node1", 10.0),
                    InterLinkSpec("node0", "node1", 25.0),
                ),
            )

    def test_unknown_machine_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown machine"):
            star_cluster(2, "no-such-machine")

    def test_unknown_node_lookup_rejected(self):
        spec = star_cluster(2)
        with pytest.raises(ValidationError, match="unknown cluster node"):
            spec.node_index("node9")

    @pytest.mark.parametrize("preset", [star_cluster, fat_tree_cluster])
    def test_presets_reject_zero_nodes(self, preset):
        with pytest.raises(ValidationError, match="n_nodes"):
            preset(0)


class TestPresets:
    def test_star_shape(self):
        spec = star_cluster(4)
        assert len(spec) == 4
        assert spec.node_names == ("node0", "node1", "node2", "node3")
        assert spec.switches == ("sw0",)
        # one bidirectional pair per node
        assert len(spec.links) == 8
        assert spec.node_index("node2") == 2

    def test_star_accepts_machine_instance(self):
        spec = star_cluster(2, _machine())
        assert spec.nodes[0].machine.name == "small-hetero"

    def test_fat_tree_single_pod_has_no_core(self):
        spec = fat_tree_cluster(3, pod_size=4)
        assert spec.switches == ("edge0",)

    def test_fat_tree_pods_and_core(self):
        spec = fat_tree_cluster(8, pod_size=4)
        assert spec.switches == ("edge0", "edge1", "core")
        # 8 node<->edge pairs + 2 edge<->core pairs
        assert len(spec.links) == 20

    def test_link_defaults_are_network_scale(self):
        spec = star_cluster(2, bandwidth_gbps=12.5, latency_us=50.0)
        for link in spec.links:
            assert link.bandwidth_gbps == 12.5
            assert link.latency_us == 50.0
