"""Global placement policies and the GlobalScheduler's bookkeeping."""

import math

import pytest

from repro.apps.dense import cholesky_program
from repro.cluster.placement import (
    GlobalScheduler,
    NodeView,
    PlacementContext,
    make_placement,
    placement_names,
)
from repro.cluster.spec import star_cluster
from repro.cluster.topology import Cluster
from repro.obs.events import JobPlaced, NodeLoad
from repro.utils.validation import ValidationError
from repro.workload.stream import Job


def _job(jid=0, arrival=0.0, after=None):
    return Job(
        jid=jid, arrival_us=arrival, program=cholesky_program(2, 512),
        after=after,
    )


def _ctx(cluster, work, *, t=0.0, avail=None, pred=None):
    views = tuple(
        NodeView(
            name=name, index=i, n_workers=cluster.n_workers_of(name),
            avail_until=(avail or [0.0] * cluster.n_nodes)[i],
        )
        for i, name in enumerate(cluster.node_names)
    )
    return PlacementContext(
        job=_job(), t=t, views=views, work_us=tuple(work), pred=pred,
        cluster=cluster,
    )


@pytest.fixture
def cluster():
    return Cluster(star_cluster(3))


def test_registry_names():
    assert placement_names() == (
        "load-aware", "locality-aware", "pack", "random", "round-robin",
    )
    with pytest.raises(ValidationError, match="unknown placement"):
        make_placement("bogus")


def test_pack_prefers_busiest_then_lowest_index(cluster):
    policy = make_placement("pack")
    idx, reason, scores = policy.choose(
        _ctx(cluster, [100.0] * 3, avail=[50.0, 400.0, 400.0])
    )
    assert idx == 1  # busiest, tie broken toward the lower index
    assert "backlog" in reason
    assert len(scores) == 3


def test_round_robin_rotates_over_feasible(cluster):
    policy = make_placement("round-robin")
    work = [100.0, math.inf, 100.0]  # node1 infeasible
    picks = [policy.choose(_ctx(cluster, work))[0] for _ in range(4)]
    assert picks == [0, 2, 0, 2]


def test_random_is_seed_deterministic(cluster):
    picks_a = [
        make_placement("random", seed=7).choose(_ctx(cluster, [1.0] * 3))[0]
        for _ in range(5)
    ]
    picks_b = [
        make_placement("random", seed=7).choose(_ctx(cluster, [1.0] * 3))[0]
        for _ in range(5)
    ]
    assert picks_a == picks_b


def test_load_aware_minimizes_projected_finish(cluster):
    policy = make_placement("load-aware")
    idx, _, scores = policy.choose(
        _ctx(cluster, [1000.0] * 3, avail=[5000.0, 100.0, 5000.0])
    )
    assert idx == 1
    assert scores[1] == min(scores)


def test_locality_aware_follows_the_data(cluster):
    policy = make_placement("locality-aware")
    # Equal load: the predecessor's node wins because any other node
    # pays the transfer of its 100 MB output.
    idx, reason, _ = policy.choose(
        _ctx(cluster, [1000.0] * 3, pred=(2, 100_000_000))
    )
    assert idx == 2
    assert "co-located" in reason


def test_locality_aware_abandons_an_overloaded_owner(cluster):
    policy = make_placement("locality-aware")
    # Tiny output, predecessor's node drowning in backlog: move.
    idx, _, _ = policy.choose(
        _ctx(
            cluster, [1000.0] * 3,
            avail=[0.0, 0.0, 10_000_000.0], pred=(2, 1_000),
        )
    )
    assert idx != 2


def test_no_feasible_node_raises(cluster):
    policy = make_placement("load-aware")
    with pytest.raises(ValidationError, match="cannot execute on any"):
        policy.choose(_ctx(cluster, [math.inf] * 3))


def test_global_scheduler_updates_views_and_events(cluster):
    sched = GlobalScheduler(cluster, make_placement("load-aware"))
    rec0 = sched.place(_job(jid=0), (300.0, 300.0, 300.0), None)
    rec1 = sched.place(_job(jid=1, arrival=1.0), (300.0, 300.0, 300.0), None)
    assert rec0.node != rec1.node  # second placement sees the first's load
    assert sched.placements == {0: rec0, 1: rec1}
    view = next(v for v in sched.views if v.name == rec0.node)
    assert view.n_jobs == 1
    assert view.avail_until > 0.0
    kinds = [type(e) for e in sched.events]
    assert kinds == [JobPlaced, NodeLoad, JobPlaced, NodeLoad]
    placed = sched.events[0]
    assert placed.kind == "job_placed"
    assert placed.node == rec0.node
    assert placed.policy == "load-aware"
