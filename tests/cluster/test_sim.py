"""End-to-end cluster simulation: determinism, equivalence, fabric,
global admission and the checker family."""

import pytest

from repro.api import simulate_stream
from repro.apps.dense import cholesky_program, lu_program
from repro.check.cluster import check_cluster
from repro.cluster import (
    fat_tree_cluster,
    job_output_bytes,
    job_work_us,
    simulate_cluster,
    star_cluster,
)
from repro.control import ControlConfig, TenantQuota
from repro.utils.validation import ValidationError
from repro.workload.stream import Job, JobStream, poisson_stream


def _stream(n_jobs=8, rate=200.0, seed=3):
    return poisson_stream(
        [lambda: cholesky_program(3, 512), lambda: lu_program(3, 512)],
        rate_jobs_per_s=rate,
        n_jobs=n_jobs,
        seed=seed,
        tenants=("t0", "t1"),
    )


def _chain_stream(n=4):
    jobs = [Job(jid=0, arrival_us=0.0, program=cholesky_program(4, 512))]
    for i in range(1, n):
        jobs.append(Job(
            jid=i, arrival_us=10.0 * i,
            program=cholesky_program(4, 512), after=i - 1,
        ))
    return JobStream(name="chain", jobs=tuple(jobs))


def _fingerprint(res):
    return (
        res.makespan_us,
        {n: recs for n, recs in res._task_records.items()},
        [(j.jid, j.node, j.start_us, j.end_us) for j in res.jobs],
        res.total_inter_node_bytes,
    )


class TestBasics:
    def test_all_jobs_complete_with_placements(self):
        stream = _stream()
        res = simulate_cluster(stream, star_cluster(4), check_invariants=True)
        assert len(res.jobs) == len(stream.jobs)
        assert set(res.placements) == {j.jid for j in stream.jobs}
        for job in res.jobs:
            assert job.node == res.placements[job.jid].node
        assert sum(n.n_jobs for n in res.nodes) == len(stream.jobs)
        assert 0.0 < res.mean_utilization <= 1.0
        assert res.imbalance >= 1.0
        assert res.converged

    def test_report_is_json_ready(self):
        import json

        res = simulate_cluster(_stream(4), star_cluster(2))
        doc = res.as_dict()
        json.dumps(doc)
        assert doc["n_nodes"] == 2
        assert doc["policy"] == "load-aware"
        assert len(doc["jobs"]) == 4

    def test_work_and_output_helpers(self):
        import math

        prog = cholesky_program(3, 512)
        clus_model = star_cluster(1).nodes[0].machine
        from repro.runtime.perfmodel import AnalyticalPerfModel

        pm = AnalyticalPerfModel(clus_model.calibration())
        work = job_work_us(prog, pm, ("cpu", "gpu"))
        assert math.isfinite(work) and work > 0.0
        assert job_output_bytes(prog) > 0

    def test_unsupported_config_knobs_rejected(self):
        from repro.api import SimConfig

        with pytest.raises(ValidationError, match="record_trace"):
            simulate_cluster(
                _stream(2), star_cluster(2),
                config=SimConfig(record_trace=True),
            )

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValidationError, match="unknown placement"):
            simulate_cluster(_stream(2), star_cluster(2), placement="bogus")


class TestDeterminism:
    def test_repeat_runs_bit_identical(self):
        stream = _stream()
        spec = fat_tree_cluster(4, pod_size=2)
        a = simulate_cluster(stream, spec, placement="random")
        b = simulate_cluster(stream, spec, placement="random")
        assert _fingerprint(a) == _fingerprint(b)

    def test_sharded_execution_bit_identical(self):
        stream = _stream()
        spec = star_cluster(4)
        serial = simulate_cluster(stream, spec, jobs=1)
        sharded = simulate_cluster(stream, spec, jobs=3)
        assert _fingerprint(serial) == _fingerprint(sharded)

    def test_single_node_cluster_matches_simulate_stream(self):
        stream = _stream(6)
        clustered = simulate_cluster(stream, star_cluster(1))
        plain = simulate_stream(stream, "small-hetero", "multiprio")
        assert clustered.makespan_us == plain.makespan_us
        assert [
            (j.jid, j.start_us, j.end_us, j.isolated_us)
            for j in clustered.jobs
        ] == [
            (j.jid, j.start_us, j.end_us, j.isolated_us) for j in plain.jobs
        ]


class TestCrossNodeDependencies:
    def test_chain_scattered_across_nodes_charges_the_fabric(self):
        res = simulate_cluster(
            _chain_stream(4), star_cluster(3), placement="round-robin",
            check_invariants=True,
        )
        assert res.converged
        assert len(res.transfers) == 3  # every hop of the chain crossed
        expected = 3 * 2 * job_output_bytes(cholesky_program(4, 512))
        assert res.total_inter_node_bytes == expected
        jobs = {j.jid: j for j in res.jobs}
        for t in res.transfers:
            assert t.depart_us >= jobs[t.pred_jid].end_us
            assert jobs[t.succ_jid].start_us >= t.arrive_us

    def test_colocated_chain_moves_nothing(self):
        res = simulate_cluster(
            _chain_stream(4), star_cluster(3), placement="locality-aware",
        )
        assert res.transfers == []
        assert res.total_inter_node_bytes == 0
        assert res.rounds == 1  # no cross edges: one engine pass suffices


class TestGlobalAdmission:
    def test_quota_sheds_at_the_cluster_door(self):
        control = ControlConfig(
            default_quota=TenantQuota(rate=0.0, burst=1e-9)
        )
        stream = _stream(6)
        res = simulate_cluster(stream, star_cluster(2), control=control)
        assert len(res.rejected) == 6
        assert all(reason == "quota" for _, _, reason in res.rejected)
        assert res.jobs == []

    def test_guaranteed_jobs_always_admit(self):
        control = ControlConfig(
            default_quota=TenantQuota(rate=0.0, burst=1e-9)
        )
        jobs = tuple(
            Job(
                jid=i, arrival_us=100.0 * i,
                program=cholesky_program(3, 512),
                qos="guaranteed" if i == 0 else "burstable",
            )
            for i in range(3)
        )
        res = simulate_cluster(
            JobStream(name="mixed", jobs=jobs), star_cluster(2),
            control=control, check_invariants=True,
        )
        assert [j.jid for j in res.jobs] == [0]
        assert {jid for jid, _, _ in res.rejected} == {1, 2}


class TestChecker:
    def test_clean_run_has_no_violations(self):
        res = simulate_cluster(
            _stream(), fat_tree_cluster(4, pod_size=2),
            placement="round-robin",
        )
        assert check_cluster(res, n_arrived=8) == []

    def test_tampered_placement_flagged(self):
        res = simulate_cluster(_stream(4), star_cluster(2))
        from dataclasses import replace

        jid = res.jobs[0].jid
        res.placements[jid] = replace(res.placements[jid], node="node9")
        msgs = check_cluster(res)
        assert any("cluster.placement" in m for m in msgs)

    def test_missing_arrivals_flagged(self):
        res = simulate_cluster(_stream(4), star_cluster(2))
        msgs = check_cluster(res, n_arrived=5)
        assert any("cluster.conservation" in m for m in msgs)

    def test_uncharged_fabric_flagged(self):
        res = simulate_cluster(
            _chain_stream(3), star_cluster(3), placement="round-robin",
        )
        res.transfers.pop()
        msgs = check_cluster(res)
        assert any("cluster.fabric" in m for m in msgs)
