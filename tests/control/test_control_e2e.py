"""End-to-end control-plane runs through simulate_stream().

Covers the issue's acceptance criteria: a no-op control plane is
bit-identical to an uncontrolled run, overload sheds only lower
classes while guaranteed jobs all complete, the ledger conserves
credit under the invariant checker, all-rejected streams stay
NaN-free, and cancellation releases cross-job ``after`` chains.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.api import simulate_stream
from repro.apps.dense import cholesky_program
from repro.check.differential import fingerprint
from repro.control.plane import ControlConfig, default_overload_config
from repro.control.quota import TenantQuota
from repro.experiments.overload import (
    estimate_job_cost_us,
    overload_workload,
    sustainable_rate_jobs_per_s,
)
from repro.obs.events import JobAdmitted, JobRejected
from repro.platform import MACHINES
from repro.workload.stream import Job, JobStream, poisson_stream


def mixed_stream(n_jobs=6, rate=200.0, seed=7):
    return poisson_stream(
        [("chol", lambda: cholesky_program(4, 384))],
        rate_jobs_per_s=rate,
        n_jobs=n_jobs,
        seed=seed,
        tenants=("t0", "t1", "t2"),
        qos=("guaranteed", "burstable", "best-effort"),
    )


def overloaded_run(multiplier=4.0, n_tenants=6, n_jobs=24, seed=3, **kwargs):
    machine = "small-hetero"
    job_cost = estimate_job_cost_us(machine)
    rate = multiplier * sustainable_rate_jobs_per_s(machine, job_cost)
    stream = overload_workload(
        rate_jobs_per_s=rate, n_tenants=n_tenants, n_jobs=n_jobs, seed=seed
    )
    n_workers = len(MACHINES[machine]().platform().workers)
    control = default_overload_config(
        tenants=stream.tenants,
        sustainable_work_per_s=float(n_workers),
        job_cost_us=job_cost,
        max_inflight_jobs=2.0 * n_workers,
    )
    return simulate_stream(
        stream, machine, "multiprio", control=control,
        isolated_baseline=False, **kwargs,
    )


class TestNoopBitIdentity:
    @pytest.mark.parametrize("scheduler", ["multiprio", "dmdas"])
    def test_unlimited_control_is_bit_identical(self, scheduler):
        stream = mixed_stream()
        plain = simulate_stream(
            stream, "small-hetero", scheduler,
            isolated_baseline=False, record_trace=True,
        )
        controlled = simulate_stream(
            stream, "small-hetero", scheduler, control=ControlConfig.unlimited(),
            isolated_baseline=False, record_trace=True,
        )
        assert fingerprint(plain.sim) == fingerprint(controlled.sim)
        ledger = controlled.control
        assert ledger is not None
        assert ledger.n_arrived == ledger.n_completed == len(stream)
        assert ledger.n_rejected == ledger.n_evicted == ledger.n_delays == 0
        assert controlled.sim.n_cancelled == 0


class TestOverload:
    def test_credit_conservation_under_checker(self):
        sres = overloaded_run(check_invariants=True)
        ledger = sres.control
        assert ledger.n_completed + ledger.n_rejected + ledger.n_evicted \
            == ledger.n_arrived == 24
        # 4x load through a 1x-provisioned control plane must refuse work.
        assert ledger.n_rejected + ledger.n_evicted > 0
        # StreamResult only reports jobs that actually completed.
        assert len(sres.jobs) == ledger.n_completed
        assert {j.jid for j in sres.jobs} \
            == {o.jid for o in ledger.outcomes if o.status == "completed"}

    def test_guaranteed_class_is_protected(self):
        ledger = overloaded_run().control
        guaranteed = [o for o in ledger.outcomes if o.qos == "guaranteed"]
        assert guaranteed
        assert all(o.status == "completed" for o in guaranteed)
        for o in ledger.outcomes:
            if o.status in ("rejected", "evicted"):
                assert o.qos in ("burstable", "best-effort")
        per_class = ledger.per_class()
        assert per_class["guaranteed"]["rejection_rate"] == 0.0
        assert per_class["guaranteed"]["eviction_rate"] == 0.0
        assert math.isfinite(per_class["guaranteed"]["p99_slowdown"])

    def test_admission_events_recorded(self):
        sres = overloaded_run(record_level="tasks")
        admitted = [e for e in sres.sim.events if isinstance(e, JobAdmitted)]
        rejected = [e for e in sres.sim.events if isinstance(e, JobRejected)]
        ledger = sres.control
        assert len(admitted) == ledger.n_admitted
        assert len(rejected) == ledger.n_rejected
        qos_of = {o.jid: o.qos for o in ledger.outcomes}
        assert all(e.qos == qos_of[e.jid] for e in admitted + rejected)

    def test_report_is_json_serializable(self):
        sres = overloaded_run(n_jobs=12)
        doc = json.loads(json.dumps(sres.as_dict()))
        assert doc["control"]["n_arrived"] == 12
        assert set(doc["control"]["per_class"]) <= {
            "guaranteed", "burstable", "best-effort"
        }


class TestDegenerateStreams:
    def test_all_rejected_stream_is_nan_free(self):
        stream = poisson_stream(
            [("chol", lambda: cholesky_program(4, 384))],
            rate_jobs_per_s=100.0, n_jobs=4, seed=1,
            tenants=("t0",), qos=("best-effort",),
        )
        control = ControlConfig(
            default_quota=TenantQuota(rate=0.0, burst=1e-6)
        )
        sres = simulate_stream(
            stream, "small-hetero", "multiprio", control=control,
            isolated_baseline=False, check_invariants=True,
        )
        ledger = sres.control
        assert ledger.n_rejected == 4 and ledger.n_completed == 0
        assert list(sres.jobs) == []
        for value in (
            sres.makespan_us, sres.mean_latency_us, sres.p99_latency_us,
            sres.mean_queueing_us, sres.fairness, sres.tenant_fairness,
            sres.throughput_jobs_per_s,
        ):
            assert math.isfinite(value)
        overall = ledger.overall()
        assert overall["slo_miss_rate"] == 1.0
        assert all(math.isfinite(v) for v in overall.values())

    def test_shed_job_releases_after_dependent_job(self):
        # j1 chains after j0; j0 is shed (zero-credit best-effort), and
        # the cancellation must still release j1's sources.
        jobs = (
            Job(jid=0, arrival_us=0.0, program=cholesky_program(4, 384),
                tenant="be", name="doomed", qos="best-effort"),
            Job(jid=1, arrival_us=10.0, program=cholesky_program(4, 384),
                tenant="g", name="heir", after=0, qos="guaranteed"),
        )
        control = ControlConfig(
            quotas={"be": TenantQuota(rate=0.0, burst=1e-6)}
        )
        sres = simulate_stream(
            JobStream(name="chain", jobs=jobs), "small-hetero", "multiprio",
            control=control, isolated_baseline=False, check_invariants=True,
        )
        ledger = sres.control
        by_jid = {o.jid: o for o in ledger.outcomes}
        assert by_jid[0].status == "rejected"
        assert by_jid[1].status == "completed"
        assert len(sres.jobs) == 1 and sres.jobs[0].jid == 1
