"""Unit tests of the admission controller (repro.control.plane)."""

import pytest

from repro.control.plane import (
    ControlConfig,
    ControlPlane,
    JobRecord,
    default_overload_config,
)
from repro.control.quota import TenantQuota
from repro.utils.validation import ValidationError


def seed_jobs(plane: ControlPlane, specs) -> None:
    """Inject job records directly: specs = [(jid, tenant, qos, cost_us)].

    Each job gets one task whose tid equals its jid, costing the full
    job estimate — the unit-level stand-in for begin_run()'s sweep.
    """
    for jid, tenant, qos, cost in specs:
        rec = JobRecord(jid, f"j{jid}", tenant, qos, 0.0, 1, cost)
        plane._records[jid] = rec
        plane._rec_of_tid[jid] = rec
        plane._cost_of_tid[jid] = cost


class TestControlConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_inflight_us": 0.0},
        {"backoff_us": 0.0},
        {"backoff_factor": 0.5},
        {"max_backoff_us": 1.0, "backoff_us": 10.0},
        {"max_delays": -1},
        {"slo_slowdown": 0.0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ControlConfig(**kwargs)

    def test_unlimited_is_structurally_noop(self):
        cfg = ControlConfig.unlimited()
        assert cfg.default_quota.unmetered
        assert cfg.max_inflight_us is None
        assert not cfg.evict_on_overload

    def test_default_overload_config_splits_rate(self):
        cfg = default_overload_config(
            tenants=("a", "b"), sustainable_work_per_s=4.0, job_cost_us=100.0
        )
        assert cfg.default_quota.rate == pytest.approx(2.0)
        assert cfg.max_inflight_us == pytest.approx(800.0)

    def test_default_overload_config_needs_tenants(self):
        with pytest.raises(ValidationError):
            default_overload_config(tenants=(), sustainable_work_per_s=1.0)


class TestDecide:
    def test_unlimited_accepts_everything(self):
        plane = ControlPlane(ControlConfig.unlimited())
        seed_jobs(plane, [(0, "t", "best-effort", 1e9), (1, "t", "burstable", 1e9)])
        for jid in (0, 1):
            d = plane.decide(jid, now=0.0)
            assert d.action == "accept" and d.evict_jids == ()
        assert plane.audit() == []

    def test_quota_exhaustion_sheds_best_effort(self):
        cfg = ControlConfig(default_quota=TenantQuota(rate=0.0, burst=1e-4))
        plane = ControlPlane(cfg)
        seed_jobs(plane, [(0, "t", "best-effort", 90.0), (1, "t", "best-effort", 90.0)])
        assert plane.decide(0, now=0.0).action == "accept"
        d = plane.decide(1, now=0.0)
        assert d.action == "shed" and d.reason == "quota"
        assert plane._records[1].status == "shed"

    def test_burstable_delays_with_bounded_backoff_then_sheds(self):
        cfg = ControlConfig(
            default_quota=TenantQuota(rate=0.0, burst=1e-5),
            backoff_us=100.0, backoff_factor=2.0, max_backoff_us=300.0,
            max_delays=3,
        )
        plane = ControlPlane(cfg)
        seed_jobs(plane, [(0, "t", "burstable", 50.0)])
        retries = []
        now = 0.0
        for _ in range(3):
            d = plane.decide(0, now)
            assert d.action == "delay"
            retries.append(d.retry_at_us - now)
            now = d.retry_at_us
        assert retries == [100.0, 200.0, 300.0]  # capped at max_backoff_us
        d = plane.decide(0, now)
        assert d.action == "shed"
        assert "exhausted-after-3-delays" in d.reason

    def test_guaranteed_always_admitted_even_broke(self):
        cfg = ControlConfig(
            default_quota=TenantQuota(rate=0.0, burst=1e-5),
            max_inflight_us=10.0,
        )
        plane = ControlPlane(cfg)
        seed_jobs(plane, [(0, "t", "guaranteed", 500.0), (1, "t", "guaranteed", 500.0)])
        assert plane.decide(0, now=0.0).action == "accept"
        assert plane.decide(1, now=0.0).action == "accept"
        # Overdraft: the bucket went deeply negative but nothing was shed.
        assert plane.accountant.balance_us("t", 0.0) < 0
        assert all(r.status == "admitted" for r in plane.records())

    def test_global_budget_sheds_when_full(self):
        cfg = ControlConfig(max_inflight_us=100.0, evict_on_overload=False)
        plane = ControlPlane(cfg)
        seed_jobs(plane, [(0, "t", "best-effort", 80.0), (1, "u", "best-effort", 80.0)])
        assert plane.decide(0, now=0.0).action == "accept"
        d = plane.decide(1, now=0.0)
        assert d.action == "shed" and d.reason == "budget"

    def test_guaranteed_evicts_newest_best_effort_first(self):
        cfg = ControlConfig(max_inflight_us=100.0)
        plane = ControlPlane(cfg)
        seed_jobs(plane, [
            (0, "a", "best-effort", 40.0),
            (1, "b", "best-effort", 40.0),
            (2, "c", "guaranteed", 60.0),
        ])
        assert plane.decide(0, now=0.0).action == "accept"
        assert plane.decide(1, now=1.0).action == "accept"
        d = plane.decide(2, now=2.0)
        assert d.action == "accept"
        assert d.evict_jids == (1,)  # newest admission evicted first
        assert plane._records[1].status == "evicted"
        assert plane._records[0].status == "admitted"
        assert plane.audit() == []

    def test_burstable_never_evicted_for_headroom(self):
        cfg = ControlConfig(max_inflight_us=100.0)
        plane = ControlPlane(cfg)
        seed_jobs(plane, [
            (0, "a", "burstable", 90.0),
            (1, "b", "guaranteed", 60.0),
        ])
        assert plane.decide(0, now=0.0).action == "accept"
        d = plane.decide(1, now=1.0)
        # Admitted by overdraft, but no burstable job may be evicted.
        assert d.action == "accept" and d.evict_jids == ()
        assert plane._records[0].status == "admitted"


class TestSettlement:
    def test_task_completion_returns_budget(self):
        cfg = ControlConfig(max_inflight_us=100.0)
        plane = ControlPlane(cfg)
        seed_jobs(plane, [(0, "t", "best-effort", 80.0), (1, "t", "best-effort", 80.0)])
        assert plane.decide(0, now=0.0).action == "accept"
        plane.on_task_done(0, now=5.0)
        assert plane._records[0].status == "done"
        assert plane.inflight_us == pytest.approx(0.0)
        # Budget freed: the next job fits again.
        assert plane.decide(1, now=6.0).action == "accept"
        assert plane.audit() == []

    def test_cancelled_tasks_counted(self):
        plane = ControlPlane(ControlConfig())
        seed_jobs(plane, [(0, "t", "best-effort", 10.0)])
        plane.decide(0, now=0.0)
        plane.on_task_cancelled(0, now=1.0)
        rec = plane._records[0]
        assert rec.n_cancelled == 1 and rec.n_left == 0

    def test_counters_roll_up(self):
        cfg = ControlConfig(
            default_quota=TenantQuota(rate=0.0, burst=1e-5), max_delays=0
        )
        plane = ControlPlane(cfg)
        seed_jobs(plane, [(0, "t", "burstable", 50.0), (1, "t", "guaranteed", 50.0)])
        plane.decide(0, now=0.0)  # shed (max_delays=0)
        plane.decide(1, now=0.0)  # accept
        c = plane.counters()
        assert c["arrived"] == 2 and c["rejected"] == 1 and c["admitted"] == 1


class TestAudit:
    def test_clean_plane_audits_clean(self):
        plane = ControlPlane(ControlConfig())
        seed_jobs(plane, [(0, "t", "burstable", 10.0)])
        plane.decide(0, now=0.0)
        assert plane.audit() == []

    def test_guaranteed_shed_is_flagged(self):
        plane = ControlPlane(ControlConfig())
        seed_jobs(plane, [(0, "t", "guaranteed", 10.0)])
        rec = plane._records[0]
        rec.first_decided_us = 0.0
        plane.n_arrived = 1
        rec.status = "shed"  # corrupt on purpose: policy can't produce this
        assert any("guaranteed" in v for v in plane.audit())

    def test_inflight_gauge_divergence_flagged(self):
        plane = ControlPlane(ControlConfig())
        seed_jobs(plane, [(0, "t", "burstable", 10.0)])
        plane.decide(0, now=0.0)
        plane.inflight_us += 5.0  # corrupt on purpose
        assert any("in-flight gauge" in v for v in plane.audit())

    def test_decision_leak_flagged(self):
        plane = ControlPlane(ControlConfig())
        seed_jobs(plane, [(0, "t", "burstable", 10.0)])
        rec = plane._records[0]
        rec.first_decided_us = 0.0  # decided but no delay/admit/shed recorded
        plane.n_arrived = 1
        assert any("leaked" in v for v in plane.audit())
