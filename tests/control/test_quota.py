"""Unit tests of the token-bucket accountant (repro.control.quota)."""

import math

import pytest

from repro.control.quota import QuotaAccountant, TenantQuota
from repro.utils.validation import ValidationError


class TestTenantQuota:
    def test_default_is_unmetered(self):
        q = TenantQuota()
        assert q.unmetered
        assert math.isinf(q.burst_us)

    def test_burst_us_converts_task_seconds(self):
        assert TenantQuota(rate=1.0, burst=0.5).burst_us == 0.5e6

    @pytest.mark.parametrize("kwargs", [
        {"rate": -1.0},
        {"rate": math.nan},
        {"burst": 0.0},
        {"burst": -2.0},
        {"burst": math.nan},
    ])
    def test_invalid_contracts_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            TenantQuota(**kwargs)


class TestQuotaAccountant:
    def test_bucket_starts_full(self):
        acc = QuotaAccountant(default=TenantQuota(rate=1.0, burst=2.0))
        assert acc.balance_us("t", now=0.0) == 2.0e6

    def test_refill_is_rate_times_dt_capped_at_burst(self):
        acc = QuotaAccountant(default=TenantQuota(rate=0.5, burst=2.0))
        acc.balance_us("t", now=0.0)
        acc.charge("t", 1.5e6, now=0.0)
        # 1e6 us later: 0.5e6 + 0.5 * 1e6 = 1.0e6 credits.
        assert acc.balance_us("t", now=1e6) == pytest.approx(1.0e6)
        # Far later the bucket caps at burst, never beyond.
        assert acc.balance_us("t", now=1e9) == pytest.approx(2.0e6)

    def test_can_afford_and_charge(self):
        acc = QuotaAccountant(default=TenantQuota(rate=0.0, burst=1.0))
        assert acc.can_afford("t", 1.0e6, now=0.0)
        acc.charge("t", 1.0e6, now=0.0)
        assert not acc.can_afford("t", 1.0, now=0.0)

    def test_overdraft_allowed_and_recovers(self):
        acc = QuotaAccountant(default=TenantQuota(rate=1.0, burst=1.0))
        bal = acc.charge("t", 3.0e6, now=0.0)
        assert bal == pytest.approx(-2.0e6)
        # Refill applies to a negative balance too.
        assert acc.balance_us("t", now=1e6) == pytest.approx(-1.0e6)

    def test_unmetered_tenant_never_denied(self):
        acc = QuotaAccountant()
        assert acc.can_afford("t", 1e18, now=0.0)
        assert math.isinf(acc.charge("t", 1e18, now=0.0))

    def test_per_tenant_quotas_override_default(self):
        acc = QuotaAccountant(
            quotas={"vip": TenantQuota(rate=10.0, burst=10.0)},
            default=TenantQuota(rate=0.0, burst=1.0),
        )
        assert acc.quota_of("vip").rate == 10.0
        assert acc.quota_of("other").burst == 1.0

    def test_buckets_are_independent(self):
        acc = QuotaAccountant(default=TenantQuota(rate=0.0, burst=1.0))
        acc.charge("a", 1.0e6, now=0.0)
        assert acc.can_afford("b", 1.0e6, now=0.0)
        assert acc.tenants() == ("a", "b")

    def test_audit_flags_balance_above_burst(self):
        acc = QuotaAccountant(default=TenantQuota(rate=1.0, burst=1.0))
        acc.balance_us("t", now=0.0)
        assert acc.audit() == []
        acc._balance_us["t"] = 5.0e6  # corrupt on purpose
        assert any("exceeds" in v for v in acc.audit())
