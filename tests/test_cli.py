"""CLI tests (drive main() directly, checking stdout and files)."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "multiprio" in out and "intel-v100" in out


def test_run_cholesky_two_schedulers(capsys):
    code = main(
        ["run", "--app", "cholesky", "--size", "6", "--tile", "512",
         "--machine", "intel-v100", "--scheduler", "multiprio", "eager"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "multiprio" in out and "eager" in out
    assert "makespan" in out


def test_run_fmm_with_gantt(capsys):
    code = main(
        ["run", "--app", "fmm", "--particles", "3000", "--height", "3",
         "--scheduler", "multiprio", "--gantt"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "|" in out  # gantt rows


def test_run_sparseqr(capsys):
    code = main(
        ["run", "--app", "sparseqr", "--matrix", "cat_ears_4_4",
         "--scale", "0.01", "--scheduler", "multiprio"]
    )
    assert code == 0
    assert "cat_ears_4_4" in capsys.readouterr().out


def test_chrome_trace_output(tmp_path, capsys):
    prefix = str(tmp_path / "trace")
    code = main(
        ["run", "--app", "cholesky", "--size", "4", "--tile", "512",
         "--scheduler", "eager", "--chrome-trace", prefix]
    )
    assert code == 0
    path = tmp_path / "trace.eager.json"
    assert path.exists()
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_csv_trace_output(tmp_path, capsys):
    prefix = str(tmp_path / "trace")
    code = main(
        ["run", "--app", "lu", "--size", "3", "--tile", "512",
         "--scheduler", "eager", "--csv-trace", prefix]
    )
    assert code == 0
    assert (tmp_path / "trace.eager.csv").read_text().startswith("tid,")


@pytest.mark.parametrize("name", ["table2", "fig3"])
def test_light_experiments(name, capsys):
    assert main(["experiment", name]) == 0
    assert capsys.readouterr().out.strip()


def test_run_with_submission_window(capsys):
    code = main(
        ["run", "--app", "cholesky", "--size", "4", "--tile", "512",
         "--scheduler", "eager", "--window", "2"]
    )
    assert code == 0
    assert "makespan" in capsys.readouterr().out


def test_window_defaults_to_unbounded():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["run", "--app", "cholesky", "--scheduler", "eager"]
    )
    assert args.window is None


def test_stream_experiment(tmp_path, capsys):
    report = tmp_path / "stream.json"
    code = main(
        ["experiment", "stream", "--stream-jobs", "2", "--rates", "60",
         "--stream-schedulers", "multiprio", "--json", str(report)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "fairness" in out and "multiprio" in out
    doc = json.loads(report.read_text())
    assert doc["experiment"] == "stream"
    (row,) = doc["rows"]
    assert row["scheduler"] == "multiprio"
    assert 0.0 < row["fairness"] <= 1.0
    assert len(row["jobs"]) == 2
    assert all("slowdown" in j and "latency_us" in j for j in row["jobs"])


def test_cluster_experiment(tmp_path, capsys):
    report = tmp_path / "cluster.json"
    code = main(
        ["experiment", "cluster", "--nodes", "2",
         "--placements", "random", "locality-aware",
         "--chains-per-node", "1", "--chain-len", "2",
         "--json", str(report)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "locality-aware" in out and "imbal" in out
    doc = json.loads(report.read_text())
    assert doc["experiment"] == "cluster"
    assert len(doc["rows"]) == 2
    for row in doc["rows"]:
        assert row["n_nodes"] == 2
        assert row["converged"]
        assert len(row["nodes"]) == 2
        assert row["n_jobs"] == 4  # 1 chain/node x 2 nodes x 2 stages
    assert {r["policy"] for r in doc["rows"]} == {"random", "locality-aware"}


def test_unknown_scheduler_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--scheduler", "bogus"])


class TestTraceCommand:
    ARGS = ["--app", "cholesky", "--size", "4", "--tile", "512",
            "--scheduler", "multiprio"]

    def test_export_chrome(self, tmp_path, capsys):
        prefix = str(tmp_path / "tr")
        code = main(["trace", "export", "--format", "chrome",
                     "--out", prefix, *self.ARGS])
        assert code == 0
        doc = json.loads((tmp_path / "tr.multiprio.json").read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "M", "i", "C"} <= phases

    def test_export_jsonl_round_trips(self, tmp_path, capsys):
        from repro.obs.export import events_from_jsonl

        prefix = str(tmp_path / "tr")
        code = main(["trace", "export", "--format", "jsonl",
                     "--out", prefix, *self.ARGS])
        assert code == 0
        events = events_from_jsonl((tmp_path / "tr.multiprio.jsonl").read_text())
        assert events and {e.kind for e in events} >= {"task_end", "decision"}

    def test_export_csv(self, tmp_path, capsys):
        prefix = str(tmp_path / "tr")
        code = main(["trace", "export", "--format", "csv",
                     "--out", prefix, *self.ARGS])
        assert code == 0
        assert (tmp_path / "tr.multiprio.csv").read_text().startswith("tid,")

    def test_summary(self, capsys):
        assert main(["trace", "summary", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "scheduler decisions" in out
        assert "practical critical path" in out

    def test_criticalpath(self, capsys):
        assert main(["trace", "criticalpath", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "practical critical" in out and "worker" in out

    def test_level_tasks_has_no_decisions(self, capsys):
        assert main(["trace", "summary", "--level", "tasks", *self.ARGS]) == 0
        assert "scheduler decisions" not in capsys.readouterr().out
