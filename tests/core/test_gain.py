"""Gain heuristic tests, anchored on the paper's Table II example."""

import pytest
from hypothesis import given, strategies as st

from repro.core.gain import GainTracker, gain_scores, pairwise_gain
from repro.experiments.table2_gain import PAPER_DELTAS, PAPER_GAINS, PAPER_HD
from repro.utils.validation import ValidationError


class TestTable2:
    """The worked example of the paper's Table II, to 3 decimals."""

    @pytest.mark.parametrize("task", ["t_A", "t_B", "t_C"])
    @pytest.mark.parametrize("arch", ["a1", "a2"])
    def test_matches_published_value(self, task, arch):
        gains = gain_scores(PAPER_DELTAS[task], PAPER_HD)
        assert gains[arch] == pytest.approx(PAPER_GAINS[task][arch], abs=1e-3)

    def test_tracker_reaches_published_hd(self):
        tracker = GainTracker()
        for task in ("t_A", "t_B", "t_C"):
            tracker.observe_and_score(PAPER_DELTAS[task])
        assert tracker.hd("a1") == pytest.approx(19.0)
        assert tracker.hd("a2") == pytest.approx(19.0)

    def test_tracker_scores_match_after_priming(self):
        tracker = GainTracker()
        for task in ("t_A", "t_B", "t_C"):
            tracker.observe_and_score(PAPER_DELTAS[task])
        # Re-score once hd has converged to the table's value.
        for task in ("t_A", "t_B", "t_C"):
            gains = gain_scores(PAPER_DELTAS[task], {"a1": tracker.hd("a1"), "a2": tracker.hd("a2")})
            for arch in ("a1", "a2"):
                assert gains[arch] == pytest.approx(PAPER_GAINS[task][arch], abs=1e-3)


class TestGainProperties:
    def test_single_architecture_scores_one(self):
        assert gain_scores({"cpu": 3.0}, {}) == {"cpu": 1.0}

    def test_fastest_arch_scores_at_least_half(self):
        gains = gain_scores({"cpu": 10.0, "cuda": 2.0}, {"cpu": 8.0, "cuda": 8.0})
        assert gains["cuda"] >= 0.5
        assert gains["cpu"] <= 0.5

    def test_zero_hd_is_neutral(self):
        gains = gain_scores({"cpu": 5.0, "cuda": 5.0}, {"cpu": 0.0, "cuda": 0.0})
        assert gains == {"cpu": 0.5, "cuda": 0.5}

    def test_empty_deltas_rejected(self):
        with pytest.raises(ValidationError):
            gain_scores({}, {})

    def test_negative_hd_rejected(self):
        with pytest.raises(ValidationError):
            pairwise_gain(1.0, 2.0, -1.0, True)

    def test_clamped_to_unit_interval_with_stale_hd(self):
        # A task whose difference exceeds the recorded hd must clamp.
        gains = gain_scores({"cpu": 100.0, "cuda": 1.0}, {"cpu": 10.0, "cuda": 10.0})
        assert gains["cuda"] == 1.0
        assert gains["cpu"] == 0.0

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=1e-3, max_value=1e6),
            min_size=1,
            max_size=4,
        )
    )
    def test_scores_always_in_unit_interval(self, deltas):
        tracker = GainTracker()
        gains = tracker.observe_and_score(deltas)
        assert set(gains) == set(deltas)
        for value in gains.values():
            assert 0.0 <= value <= 1.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=1e4),
                st.floats(min_value=0.1, max_value=1e4),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_fastest_arch_always_wins_the_comparison(self, delta_pairs):
        """Across any push history, the fastest architecture's gain is
        always >= every slower architecture's gain for the same task."""
        tracker = GainTracker()
        for d_cpu, d_gpu in delta_pairs:
            gains = tracker.observe_and_score({"cpu": d_cpu, "cuda": d_gpu})
            fastest = "cpu" if d_cpu <= d_gpu else "cuda"
            other = "cuda" if fastest == "cpu" else "cpu"
            assert gains[fastest] >= gains[other]

    def test_hd_is_monotone_nondecreasing(self):
        tracker = GainTracker()
        tracker.observe_and_score({"cpu": 5.0, "cuda": 1.0})
        first = tracker.hd("cpu")
        tracker.observe_and_score({"cpu": 2.0, "cuda": 1.0})
        assert tracker.hd("cpu") == first  # smaller diff does not shrink hd
        tracker.observe_and_score({"cpu": 50.0, "cuda": 1.0})
        assert tracker.hd("cpu") > first

    def test_reset_clears_history(self):
        tracker = GainTracker()
        tracker.observe_and_score({"cpu": 5.0, "cuda": 1.0})
        tracker.reset()
        assert tracker.hd("cpu") == 0.0
