"""LS_SDH² locality score tests (Eq. 3)."""

import pytest

from repro.core.locality import ls_sdh2
from repro.runtime.data import DataHandle
from repro.runtime.task import AccessMode, Task


def handle(hid: int, size: int, nodes: set[int]) -> DataHandle:
    h = DataHandle(hid, size, home_node=0)
    h.valid_nodes = set(nodes)
    return h


def test_reads_count_linearly():
    h = handle(0, 100, {1})
    t = Task(0, "k", [(h, AccessMode.R)])
    assert ls_sdh2(t, 1) == 100.0


def test_writes_count_quadratically():
    h = handle(0, 100, {1})
    t = Task(0, "k", [(h, AccessMode.W)])
    assert ls_sdh2(t, 1) == 100.0**2


def test_rw_counts_in_both_sums():
    h = handle(0, 100, {1})
    t = Task(0, "k", [(h, AccessMode.RW)])
    assert ls_sdh2(t, 1) == 100.0 + 100.0**2


def test_commute_counts_in_both_sums():
    h = handle(0, 10, {2})
    t = Task(0, "k", [(h, AccessMode.COMMUTE)])
    assert ls_sdh2(t, 2) == 10.0 + 100.0


def test_non_resident_data_ignored():
    h = handle(0, 100, {1})
    t = Task(0, "k", [(h, AccessMode.RW)])
    assert ls_sdh2(t, 0) == 0.0


def test_write_dominates_read_of_same_total_size():
    """Keeping the written tile local must outweigh an equally-sized
    read replica — the quadratic term of Eq. 3."""
    write_h = handle(0, 1000, {1})
    read_h = handle(1, 1000, {2})
    t_write_local = Task(0, "k", [(write_h, AccessMode.W), (read_h, AccessMode.R)])
    assert ls_sdh2(t_write_local, 1) > ls_sdh2(t_write_local, 2)


def test_mixed_accesses_sum():
    h_r = handle(0, 50, {3})
    h_w = handle(1, 20, {3})
    h_missing = handle(2, 1000, {0})
    t = Task(0, "k", [(h_r, AccessMode.R), (h_w, AccessMode.W), (h_missing, AccessMode.R)])
    assert ls_sdh2(t, 3) == pytest.approx(50.0 + 400.0)
