"""MultiPrio scheduler tests: Alg. 1 PUSH, Alg. 2 POP, eviction."""

import pytest

from repro.analysis.validation import check_schedule
from repro.core.multiprio import MultiPrio
from repro.runtime.engine import SchedContext, Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, TaskState
from repro.utils.validation import ValidationError
from tests.conftest import make_fork_join_program


def make_ctx(machine):
    return SchedContext(machine.platform(), AnalyticalPerfModel(machine.calibration()))


def ready_task(flow, handle, type_name="gemm", flops=1e8, impls=("cpu", "cuda")):
    task = flow.submit(type_name, [(handle, AccessMode.RW)], flops=flops,
                       implementations=impls)
    task.state = TaskState.READY
    return task


class TestPush:
    def test_task_duplicated_into_all_capable_heaps(self, two_gpu_machine):
        ctx = make_ctx(two_gpu_machine)
        sched = MultiPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        task = ready_task(flow, flow.data(1024))
        sched.push(task)
        # RAM heap + both GPU heaps.
        assert sorted(task.sched["mp_entries"]) == [0, 1, 2]
        assert all(len(h) == 1 for h in sched.heaps.values())

    def test_cpu_only_task_skips_gpu_heaps(self, two_gpu_machine):
        ctx = make_ctx(two_gpu_machine)
        sched = MultiPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        task = ready_task(flow, flow.data(1024), impls=("cpu",))
        sched.push(task)
        assert sorted(task.sched["mp_entries"]) == [0]

    def test_best_remaining_work_counts_best_arch_nodes(self, two_gpu_machine):
        ctx = make_ctx(two_gpu_machine)
        sched = MultiPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        task = ready_task(flow, flow.data(1024), flops=1e9)  # GPU-best
        sched.push(task)
        best = ctx.best_arch(task)
        assert best == "cuda"
        delta = ctx.estimate(task, "cuda")
        assert sched.best_remaining_work[1] == pytest.approx(delta)
        assert sched.best_remaining_work[2] == pytest.approx(delta)
        assert sched.best_remaining_work[0] == 0.0

    def test_gain_orders_gpu_heap(self, hetero_machine):
        """Once hd has stabilized, a strongly-accelerated task outranks a
        weakly-accelerated one in the GPU heap."""
        ctx = make_ctx(hetero_machine)
        sched = MultiPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        strong = ready_task(flow, flow.data(1024), type_name="gemm", flops=2e9)
        weak = ready_task(flow, flow.data(1024), type_name="potrf", flops=1e8)
        sched.push(strong)  # fixes hd at the large gemm difference
        sched.push(weak)
        gpu_heap = sched.heaps[1]
        assert gpu_heap.best().task is strong

    def test_first_push_saturates_gain(self, hetero_machine):
        """Inherent to the dynamic hd maximum: the first multi-arch task
        pushed on a fresh tracker defines hd, so its fastest-arch gain is
        exactly 1 (its own difference IS the running maximum)."""
        ctx = make_ctx(hetero_machine)
        sched = MultiPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        task = ready_task(flow, flow.data(1024), type_name="potrf", flops=1e8)
        sched.push(task)
        best_node = ctx.platform.nodes_of_arch(ctx.best_arch(task))[0].mid
        assert sched.heaps[best_node].best().gain == pytest.approx(1.0)


class TestPopCondition:
    def test_best_worker_always_admitted(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = MultiPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        task = ready_task(flow, flow.data(1024), flops=1e9)
        sched.push(task)
        gpu_worker = ctx.workers_of_arch("cuda")[0]
        assert sched.pop(gpu_worker) is task

    def test_slow_worker_rejected_without_backlog(self, hetero_machine):
        """One GPU-best task, empty GPU backlog otherwise: the CPU must
        not steal it (this is the Fig. 4 end-of-run scenario)."""
        ctx = make_ctx(hetero_machine)
        sched = MultiPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        task = ready_task(flow, flow.data(1024), flops=2e9)
        sched.push(task)
        sched._take(task)  # consume its own BRW contribution
        task.sched["mp_taken"] = False  # still ready, but BRW now empty
        cpu_worker = ctx.workers_of_arch("cpu")[0]
        assert sched.pop(cpu_worker) is None

    def test_slow_worker_admitted_with_large_backlog(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = MultiPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        tasks = [ready_task(flow, flow.data(1024), flops=5e8) for _ in range(100)]
        for t in tasks:
            sched.push(t)
        cpu_worker = ctx.workers_of_arch("cpu")[0]
        popped = sched.pop(cpu_worker)
        assert popped is not None

    def test_slowdown_cap_blocks_terrible_matches(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = MultiPrio(slowdown_cap=5.0)
        sched.setup(ctx)
        flow = TaskFlow()
        # gemm at 2e9 flops is ~50x slower on a CPU core.
        tasks = [ready_task(flow, flow.data(1024), flops=2e9) for _ in range(200)]
        for t in tasks:
            sched.push(t)
        cpu_worker = ctx.workers_of_arch("cpu")[0]
        assert sched.pop(cpu_worker) is None

    def test_eviction_disabled_admits_everything(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = MultiPrio(eviction=False)
        sched.setup(ctx)
        flow = TaskFlow()
        task = ready_task(flow, flow.data(1024), flops=2e9)
        sched.push(task)
        sched.best_remaining_work[1] = 0.0  # force the unfavourable case
        cpu_worker = ctx.workers_of_arch("cpu")[0]
        assert sched.pop(cpu_worker) is task


class TestDuplicates:
    def test_pop_marks_duplicates_stale(self, two_gpu_machine):
        ctx = make_ctx(two_gpu_machine)
        sched = MultiPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        task = ready_task(flow, flow.data(1024), flops=1e9)
        sched.push(task)
        gpu0 = [w for w in ctx.workers_of_arch("cuda") if w.memory_node == 1][0]
        gpu1 = [w for w in ctx.workers_of_arch("cuda") if w.memory_node == 2][0]
        assert sched.pop(gpu0) is task
        assert sched.pop(gpu1) is None  # duplicate recognized as stale
        assert len(sched.heaps[2]) == 0

    def test_brw_released_once_on_take(self, two_gpu_machine):
        ctx = make_ctx(two_gpu_machine)
        sched = MultiPrio()
        sched.setup(ctx)
        flow = TaskFlow()
        task = ready_task(flow, flow.data(1024), flops=1e9)
        sched.push(task)
        gpu0 = [w for w in ctx.workers_of_arch("cuda") if w.memory_node == 1][0]
        sched.pop(gpu0)
        assert sched.best_remaining_work[1] == pytest.approx(0.0)
        assert sched.best_remaining_work[2] == pytest.approx(0.0)


class TestEndToEnd:
    def test_valid_schedule_on_fork_join(self, hetero_machine):
        program = make_fork_join_program(width=16)
        sim = Simulator(
            hetero_machine.platform(),
            MultiPrio(),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        check_schedule(program, res.trace, sim.platform.workers)
        assert res.scheduler_stats["stale_discards"] >= 0

    def test_eviction_improves_fig4_style_run(self, hetero_machine):
        from repro.apps.dense import cholesky_program

        program = cholesky_program(8, 512, with_priorities=False)
        results = {}
        for eviction in (True, False):
            sim = Simulator(
                hetero_machine.platform(),
                MultiPrio(eviction=eviction),
                AnalyticalPerfModel(hetero_machine.calibration()),
                seed=0,
            )
            results[eviction] = sim.run(program).makespan
        assert results[True] <= results[False]

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValidationError):
            MultiPrio(locality_n=0)
        with pytest.raises(ValidationError):
            MultiPrio(locality_eps=1.5)
        with pytest.raises(ValidationError):
            MultiPrio(max_tries=0)
        with pytest.raises(ValidationError):
            MultiPrio(brw_safety=0.0)
        with pytest.raises(ValidationError):
            MultiPrio(slowdown_cap=-1.0)


class TestRejectionStats:
    """Rejections land in the counter matching the configured mechanism —
    ``skips`` when entries stay in the heap, ``evictions`` when they are
    removed — not all lumped under one mislabeled counter."""

    def run_stats(self, hetero_machine, **mp_kw):
        from repro.apps.dense import cholesky_program

        program = cholesky_program(8, 512, with_priorities=False)
        sim = Simulator(
            hetero_machine.platform(),
            MultiPrio(**mp_kw),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        sim.run(program)
        return sim.scheduler.stats()

    def test_skip_mode_counts_skips_only(self, hetero_machine):
        stats = self.run_stats(hetero_machine, evict_on_reject=False)
        assert stats["skips"] > 0
        assert stats["evictions"] == 0

    def test_evict_mode_counts_evictions_only(self, hetero_machine):
        stats = self.run_stats(hetero_machine, evict_on_reject=True)
        assert stats["evictions"] > 0
        assert stats["skips"] == 0
