"""Tombstone (lazy-deletion) property tests for :class:`TaskHeap`.

MultiPrio's hot path marks superseded duplicate entries dead
(``entry.dead = True``) instead of eagerly removing them from every
sibling heap; the heap purges tombstones when they surface at the root
or inside a candidate window. These properties pin the contract: lazy
deletion is observationally equivalent to eager removal.
"""

from hypothesis import given, strategies as st

from repro.core.heap import TaskHeap
from repro.runtime.task import Task, TaskState


def make_task(tid: int) -> Task:
    task = Task(tid, "k", implementations=("cpu",))
    task.state = TaskState.READY
    return task


class TestTombstones:
    def test_dead_root_skipped_by_best(self):
        heap = TaskHeap()
        top = heap.insert(make_task(0), 0.9, 0.0)
        live = heap.insert(make_task(1), 0.5, 0.0)
        top.dead = True
        assert heap.best() is live
        assert len(heap) == 1  # tombstone physically purged at encounter

    def test_dead_entries_excluded_from_window(self):
        heap = TaskHeap()
        entries = [heap.insert(make_task(i), 0.5 + i / 100, 0.0) for i in range(6)]
        entries[3].dead = True
        entries[5].dead = True
        window = heap.top_candidates(6)
        assert len(window) == 4
        assert all(not e.dead for e in window)

    def test_all_dead_yields_empty(self):
        heap = TaskHeap()
        entries = [heap.insert(make_task(i), i / 10, 0.0) for i in range(5)]
        for e in entries:
            e.dead = True
        assert heap.best() is None
        assert len(heap) == 0

    def test_purge_stale_collects_tombstones(self):
        discarded = []
        heap = TaskHeap(on_discard=discarded.append)
        entries = [heap.insert(make_task(i), i / 10, 0.0) for i in range(5)]
        entries[0].dead = True
        entries[4].dead = True
        assert heap.purge_stale() == 2
        assert len(heap) == 3
        assert len(discarded) == 2

    def test_tombstone_and_predicate_staleness_compose(self):
        heap = TaskHeap(is_stale=lambda t: t.state is TaskState.DONE)
        dead_entry = heap.insert(make_task(0), 0.9, 0.0)
        stale_task = make_task(1)
        heap.insert(stale_task, 0.8, 0.0)
        live = heap.insert(make_task(2), 0.1, 0.0)
        dead_entry.dead = True
        stale_task.state = TaskState.DONE
        assert heap.best() is live
        assert len(heap) == 1


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1),
            st.floats(min_value=0, max_value=1),
        ),
        min_size=1,
        max_size=50,
    ),
    st.randoms(use_true_random=False),
)
def test_lazy_deletion_equals_eager_removal(scores, rng):
    """Property: under any interleaving of inserts, deletions and pops,
    a heap using tombstones pops the exact sequence an eager-removal
    heap pops."""
    lazy = TaskHeap()
    eager = TaskHeap()
    # Parallel entry lists: index i holds the same logical task in both.
    lazy_entries: dict[int, object] = {}
    eager_entries: dict[int, object] = {}
    for i, (gain, prio) in enumerate(scores):
        lazy_entries[i] = lazy.insert(make_task(i), gain, prio)
        eager_entries[i] = eager.insert(make_task(i), gain, prio)
        action = rng.random()
        if action < 0.3 and lazy_entries:
            victim = rng.choice(sorted(lazy_entries))
            lazy_entries.pop(victim).dead = True
            eager.remove(eager_entries.pop(victim))
        elif action < 0.5:
            a = lazy.best()
            b = eager.best()
            assert (a is None) == (b is None)
            if a is not None:
                assert a.key() == b.key()
                lazy.remove(a)
                eager.remove(b)
                lazy_entries.pop(a.task.tid)
                eager_entries.pop(b.task.tid)
        lazy.check_invariants()
    # Drain both; pop sequences must match key-for-key.
    while True:
        a = lazy.best()
        b = eager.best()
        assert (a is None) == (b is None)
        if a is None:
            break
        assert a.key() == b.key()
        lazy.remove(a)
        eager.remove(b)
