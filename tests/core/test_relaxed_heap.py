"""RelaxedTaskHeap: two-choice semantics and the rank-error bound."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.heap import RelaxedTaskHeap, TaskHeap
from repro.runtime.task import Task, TaskState


def make_task(tid: int) -> Task:
    task = Task(tid, "k", implementations=("cpu",))
    task.state = TaskState.READY
    return task


class TestBasics:
    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            RelaxedTaskHeap(0)

    def test_empty(self):
        heap = RelaxedTaskHeap(4)
        assert len(heap) == 0
        assert heap.best() is None
        assert heap.top_candidates(5) == []

    def test_k1_is_exact(self):
        """One sub-heap degenerates to the exact TaskHeap ordering."""
        relaxed = RelaxedTaskHeap(1)
        exact = TaskHeap()
        gains = [0.3, 0.9, 0.1, 0.7, 0.5]
        for i, g in enumerate(gains):
            relaxed.insert(make_task(i), g, 0.0)
            exact.insert(make_task(i), g, 0.0)
        assert relaxed.best().gain == exact.best().gain == 0.9

    def test_insert_balances_sub_heaps(self):
        heap = RelaxedTaskHeap(4, seed=1)
        for i in range(64):
            heap.insert(make_task(i), i / 64, 0.0)
        sizes = sorted(len(s) for s in heap._subs)
        assert sum(sizes) == 64
        # Two-choice insertion keeps the spread far below worst-case.
        assert sizes[-1] - sizes[0] <= 16

    def test_remove_routes_to_owner(self):
        heap = RelaxedTaskHeap(3, seed=2)
        entries = [heap.insert(make_task(i), i / 10, 0.0) for i in range(10)]
        heap.remove(entries[4])
        assert len(heap) == 9
        assert all(e.task.tid != 4 for e in heap)
        heap.check_invariants()

    def test_top_candidates_full_window_is_exact(self):
        """n >= len must return every entry (the liveness contract)."""
        heap = RelaxedTaskHeap(4, seed=3)
        for i in range(20):
            heap.insert(make_task(i), i / 20, 0.0)
        window = heap.top_candidates(len(heap))
        assert {e.task.tid for e in window} == set(range(20))

    def test_best_falls_back_to_exact_scan(self):
        """Even if the sampled pair is empty, a lone entry is found."""
        heap = RelaxedTaskHeap(8, seed=4)
        heap.insert(make_task(0), 0.5, 0.0)
        for _ in range(50):  # whatever the draws, best never misses it
            assert heap.best().task.tid == 0

    def test_determinism_per_seed(self):
        def fill(seed):
            heap = RelaxedTaskHeap(4, seed=seed)
            for i in range(32):
                heap.insert(make_task(i), (i * 7 % 32) / 32, 0.0)
            return [heap.best().task.tid for _ in range(16)]

        assert fill(5) == fill(5)
        assert fill(5) != fill(6)  # different stream, different draws

    def test_purge_stale_spans_sub_heaps(self):
        heap = RelaxedTaskHeap(4, is_stale=lambda t: t.state is TaskState.DONE)
        tasks = [make_task(i) for i in range(12)]
        for i, t in enumerate(tasks):
            heap.insert(t, i / 12, 0.0)
        for t in tasks[::2]:
            t.state = TaskState.DONE
        assert heap.purge_stale() == 6
        assert len(heap) == 6
        heap.check_invariants()


class TestRankErrorBound:
    @settings(max_examples=60, deadline=None)
    @given(
        gains=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1, max_size=120,
        ),
        k=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_query_rank_error_is_bounded(self, gains, k, seed):
        """A two-choice query returns the exact max of the sampled pair
        A ∪ B, so at most n - |A| - |B| entries can rank above it."""
        heap = RelaxedTaskHeap(k, seed=seed)
        for i, g in enumerate(gains):
            heap.insert(make_task(i), g, 0.0)
        best = heap.best()
        assert best is not None
        n_better = sum(
            1 for e in heap if e.sort_key > best.sort_key
        )
        size_a, size_b = heap.last_sample
        assert n_better <= len(gains) - size_a - size_b

    @settings(max_examples=25, deadline=None)
    @given(
        gains=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1, max_size=60,
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_k1_queries_are_rank_exact(self, gains, seed):
        heap = RelaxedTaskHeap(1, seed=seed)
        for i, g in enumerate(gains):
            heap.insert(make_task(i), g, 0.0)
        best = heap.best()
        assert all(e.sort_key <= best.sort_key for e in heap)
