"""Binary max-heap tests: ordering, removal, staleness, invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.core.heap import TaskHeap
from repro.runtime.task import Task, TaskState


def make_task(tid: int) -> Task:
    task = Task(tid, "k", implementations=("cpu",))
    task.state = TaskState.READY
    return task


class TestBasics:
    def test_empty(self):
        heap = TaskHeap()
        assert len(heap) == 0
        assert heap.best() is None
        assert heap.top_candidates(5) == []

    def test_orders_by_gain_first(self):
        heap = TaskHeap()
        heap.insert(make_task(0), 0.2, 0.9)
        heap.insert(make_task(1), 0.8, 0.1)
        heap.insert(make_task(2), 0.5, 0.5)
        assert heap.best().gain == 0.8

    def test_criticality_breaks_gain_ties(self):
        heap = TaskHeap()
        heap.insert(make_task(0), 0.5, 0.1)
        top = heap.insert(make_task(1), 0.5, 0.9)
        assert heap.best() is top

    def test_insertion_order_breaks_full_ties(self):
        heap = TaskHeap()
        first = heap.insert(make_task(0), 0.5, 0.5)
        heap.insert(make_task(1), 0.5, 0.5)
        assert heap.best() is first

    def test_remove_root_promotes_next(self):
        heap = TaskHeap()
        entries = [heap.insert(make_task(i), g, 0.0) for i, g in enumerate((0.9, 0.7, 0.8))]
        heap.remove(entries[0])
        assert heap.best().gain == 0.8
        heap.check_invariants()

    def test_remove_middle_entry(self):
        heap = TaskHeap()
        entries = [heap.insert(make_task(i), i / 10, 0.0) for i in range(10)]
        heap.remove(entries[5])
        assert len(heap) == 9
        heap.check_invariants()
        with pytest.raises(ValueError):
            heap.remove(entries[5])

    def test_drain_returns_descending_order(self):
        heap = TaskHeap()
        gains = [0.3, 0.9, 0.1, 0.7, 0.5, 0.2, 0.8]
        for i, g in enumerate(gains):
            heap.insert(make_task(i), g, 0.0)
        seen = []
        while len(heap):
            entry = heap.best()
            seen.append(entry.gain)
            heap.remove(entry)
        assert seen == sorted(gains, reverse=True)


class TestStaleness:
    def test_stale_root_discarded_on_best(self):
        discarded = []
        heap = TaskHeap(
            is_stale=lambda t: t.state is TaskState.DONE,
            on_discard=discarded.append,
        )
        stale_task = make_task(0)
        heap.insert(stale_task, 0.9, 0.0)
        live = heap.insert(make_task(1), 0.5, 0.0)
        stale_task.state = TaskState.DONE
        assert heap.best() is live
        assert len(discarded) == 1
        assert len(heap) == 1

    def test_top_candidates_skips_stale(self):
        heap = TaskHeap(is_stale=lambda t: t.state is TaskState.DONE)
        tasks = [make_task(i) for i in range(6)]
        for i, t in enumerate(tasks):
            heap.insert(t, 0.5 + i / 100, 0.0)
        tasks[3].state = TaskState.DONE
        tasks[5].state = TaskState.DONE
        window = heap.top_candidates(6)
        assert all(e.task.state is TaskState.READY for e in window)
        assert len(window) == 4

    def test_purge_stale_counts(self):
        heap = TaskHeap(is_stale=lambda t: t.state is TaskState.DONE)
        tasks = [make_task(i) for i in range(5)]
        for t in tasks:
            heap.insert(t, 0.5, 0.0)
        for t in tasks[:2]:
            t.state = TaskState.DONE
        assert heap.purge_stale() == 2
        assert len(heap) == 3


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1),
            st.floats(min_value=0, max_value=1),
        ),
        min_size=1,
        max_size=60,
    ),
    st.randoms(use_true_random=False),
)
def test_random_insert_remove_preserves_invariants(scores, rng):
    """Property: any interleaving of inserts and removals keeps the heap
    ordered with consistent positions."""
    heap = TaskHeap()
    entries = []
    for i, (gain, prio) in enumerate(scores):
        entries.append(heap.insert(make_task(i), gain, prio))
        if rng.random() < 0.3 and entries:
            victim = entries.pop(rng.randrange(len(entries)))
            heap.remove(victim)
        heap.check_invariants()
    # Drain fully; keys must come out non-increasing.
    last = None
    while len(heap):
        entry = heap.best()
        heap.remove(entry)
        if last is not None:
            assert entry.key() <= last
        last = entry.key()
