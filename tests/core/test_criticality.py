"""NOD criticality tests, anchored on the paper's Fig. 3 example."""

import pytest

from repro.core.criticality import NODTracker, nod
from repro.experiments.fig3_nod import build_fig3_dag, run_fig3
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode


class TestFig3:
    def test_published_values(self):
        result = run_fig3()
        assert result.nod_t2 == pytest.approx(2.5)
        assert result.nod_t3 == pytest.approx(1.0)

    def test_t2_more_critical_than_t3(self):
        result = run_fig3()
        assert result.nod_t2 > result.nod_t3

    def test_dag_shape(self):
        tasks = build_fig3_dag()
        assert len(tasks["T2"].succs) == 3
        assert len(tasks["T3"].succs) == 1
        assert len(tasks["T4"].preds) == 2


class TestNOD:
    def test_sink_task_has_zero_nod(self):
        tasks = build_fig3_dag()
        assert nod(tasks["T7"]) == 0.0

    def test_arch_filter_excludes_successors(self):
        flow = TaskFlow()
        d1, d2 = flow.data(8), flow.data(8)
        t = flow.submit("a", [(d1, AccessMode.W), (d2, AccessMode.W)],
                        implementations=("cpu", "cuda"))
        flow.submit("b", [(d1, AccessMode.R)], implementations=("cuda",))
        flow.submit("c", [(d2, AccessMode.R)], implementations=("cpu",))
        assert nod(t) == pytest.approx(2.0)
        assert nod(t, lambda s: s.can_exec("cuda")) == pytest.approx(1.0)
        assert nod(t, lambda s: s.can_exec("cpu")) == pytest.approx(1.0)

    def test_filtered_denominator_counts_filtered_preds(self):
        flow = TaskFlow()
        d1, d2 = flow.data(8), flow.data(8)
        t_gpu = flow.submit("a", [(d1, AccessMode.W)], implementations=("cuda",))
        flow.submit("b", [(d2, AccessMode.W)], implementations=("cpu",))
        # successor depends on both, but only one pred is cuda.
        flow.submit("c", [(d1, AccessMode.R), (d2, AccessMode.R)],
                    implementations=("cpu", "cuda"))
        cuda_filter = lambda task: task.can_exec("cuda")
        assert nod(t_gpu, cuda_filter) == pytest.approx(1.0)  # 1 / |{t_gpu}|

    def test_denominator_clamped_at_one(self):
        # A successor whose predecessors are all filtered out must not
        # divide by zero.
        flow = TaskFlow()
        d = flow.data(8)
        t = flow.submit("a", [(d, AccessMode.W)], implementations=("cpu",))
        flow.submit("b", [(d, AccessMode.R)], implementations=("cpu", "cuda"))
        only_cuda = lambda task: task.can_exec("cuda")
        # t itself is cpu-only, so the successor's filtered pred count is 0.
        value = nod(t, lambda task: True) if False else nod(
            flow._tasks[0], only_cuda
        )
        assert value in (0.0, 1.0)  # successor filtered in -> clamp to 1


class TestNODTracker:
    def test_normalizes_by_running_max(self):
        tracker = NODTracker()
        assert tracker.observe_and_score(2.0) == pytest.approx(1.0)
        assert tracker.observe_and_score(1.0) == pytest.approx(0.5)
        assert tracker.observe_and_score(4.0) == pytest.approx(1.0)
        assert tracker.max_seen == pytest.approx(4.0)

    def test_zero_before_any_positive(self):
        tracker = NODTracker()
        assert tracker.observe_and_score(0.0) == 0.0

    def test_negative_rejected(self):
        tracker = NODTracker()
        with pytest.raises(ValueError):
            tracker.observe_and_score(-1.0)

    def test_reset(self):
        tracker = NODTracker()
        tracker.observe_and_score(5.0)
        tracker.reset()
        assert tracker.max_seen == 0.0
