"""SimSpec facade: wrapper equivalence, deprecation, stream determinism."""

import warnings

import pytest

from repro.api import SimConfig, SimSpec, simulate, simulate_stream
from repro.apps.dense import cholesky_program
from repro.check.differential import fingerprint
from repro.schedulers import scheduler_names
from repro.utils.validation import ValidationError
from repro.workload.stream import poisson_stream


def small_stream(n_jobs=3):
    return poisson_stream(
        [("chol", lambda: cholesky_program(4, 384))],
        rate_jobs_per_s=150.0, n_jobs=n_jobs, seed=5,
    )


def stream_signature(sres):
    return (
        sres.sim.makespan,
        sres.sim.bytes_transferred,
        tuple((j.jid, j.start_us, j.end_us) for j in sres.jobs),
    )


class TestWrapperEquivalence:
    def test_simulate_equals_simspec_bit_identically(self):
        program = cholesky_program(5, 384)
        spec = SimSpec(
            "small-hetero", "multiprio",
            config=SimConfig(seed=3, noise_sigma=0.1, record_trace=True),
        )
        via_spec = spec.run(program)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_wrapper = simulate(
                program, "small-hetero", "multiprio",
                seed=3, noise_sigma=0.1, record_trace=True,
            )
        assert fingerprint(via_spec) == fingerprint(via_wrapper)

    def test_simulate_stream_equals_simspec_bit_identically(self):
        spec = SimSpec(
            "small-hetero", "dmdas",
            config=SimConfig(record_trace=True),
            isolated_baseline=False,
        )
        via_spec = spec.run_stream(small_stream())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_wrapper = simulate_stream(
                small_stream(), "small-hetero", "dmdas",
                record_trace=True, isolated_baseline=False,
            )
        assert fingerprint(via_spec.sim) == fingerprint(via_wrapper.sim)
        assert stream_signature(via_spec) == stream_signature(via_wrapper)

    def test_config_form_equals_loose_keywords(self):
        program = cholesky_program(4, 384)
        cfg = SimConfig(seed=7, record_trace=True)
        by_config = simulate(program, "small-hetero", "eager", config=cfg)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            by_kw = simulate(
                program, "small-hetero", "eager", seed=7, record_trace=True
            )
        assert fingerprint(by_config) == fingerprint(by_kw)


class TestDeprecation:
    def test_loose_keywords_warn(self):
        program = cholesky_program(4, 384)
        with pytest.warns(DeprecationWarning, match="SimSpec"):
            simulate(program, "small-hetero", "eager", seed=1)

    def test_stream_loose_keywords_warn(self):
        with pytest.warns(DeprecationWarning, match="SimSpec"):
            simulate_stream(
                small_stream(), "small-hetero", "eager",
                isolated_baseline=False, submission_window=64,
            )

    def test_bare_positional_call_is_warning_free(self):
        program = cholesky_program(4, 384)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(program, "small-hetero", "eager")

    def test_config_call_is_warning_free(self):
        program = cholesky_program(4, 384)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(program, "small-hetero", "eager",
                     config=SimConfig(seed=2))


class TestSpecSemantics:
    def test_convenience_keywords_fold_into_config(self):
        spec = SimSpec("small-hetero", "eager", seed=9, batch_step=50.0,
                       record_trace=True)
        assert spec.config.seed == 9
        assert spec.config.batch_step == 50.0
        assert spec.config.record_trace is True
        # The attribute view mirrors the effective config.
        assert spec.seed == 9 and spec.batch_step == 50.0

    def test_run_rejects_control_plane(self):
        from repro.control.plane import ControlConfig

        spec = SimSpec("small-hetero", "eager",
                       control=ControlConfig.unlimited())
        with pytest.raises(ValidationError, match="run_stream"):
            spec.run(cholesky_program(4, 384))

    def test_unknown_machine_rejected_at_run(self):
        spec = SimSpec("no-such-box", "eager")
        with pytest.raises(ValidationError, match="unknown machine"):
            spec.run(cholesky_program(4, 384))


class TestStreamDeterminism:
    @pytest.mark.parametrize("scheduler", scheduler_names())
    def test_every_registered_scheduler_is_stream_deterministic(self, scheduler):
        def once():
            spec = SimSpec("small-hetero", scheduler, isolated_baseline=False)
            return stream_signature(spec.run_stream(small_stream()))

        assert once() == once()

    @pytest.mark.parametrize("k", [2, 4])
    def test_relaxed_multiprio_is_stream_deterministic(self, k):
        def once():
            spec = SimSpec(
                "small-hetero", "multiprio", isolated_baseline=False,
                config=SimConfig(sched_params={"relaxed": k},
                                 check_invariants=True),
            )
            return stream_signature(spec.run_stream(small_stream()))

        assert once() == once()

    def test_batched_stream_deterministic_and_identical(self):
        def once(batch):
            spec = SimSpec(
                "small-hetero", "multiqueue", isolated_baseline=False,
                config=SimConfig(batch_step=batch, record_trace=True),
            )
            return spec.run_stream(small_stream())

        plain = once(None)
        batched = once(80.0)
        assert fingerprint(plain.sim) == fingerprint(batched.sim)
        assert stream_signature(plain) == stream_signature(batched)
