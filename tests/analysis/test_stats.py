"""Statistics helper tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    geometric_mean,
    jain_fairness_index,
    load_balance_index,
    percentile,
    summarize_results,
)
from repro.experiments.harness import ExperimentResult


def row(scheduler, makespan, gflops=1.0):
    return ExperimentResult(
        experiment="t",
        machine="m",
        scheduler=scheduler,
        workload="w",
        makespan_us=makespan,
        gflops=gflops,
        bytes_transferred=100,
    )


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestLoadBalance:
    def test_perfect_balance(self):
        assert load_balance_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hot_worker(self):
        assert load_balance_index([9.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_degenerate(self):
        assert load_balance_index([]) == 1.0
        assert load_balance_index([0.0, 0.0]) == 1.0


class TestPercentile:
    def test_empty_population_is_zero_not_nan(self):
        assert percentile([], 0.99) == 0.0

    def test_singleton_returns_its_element_at_any_q(self):
        for q in (0.0, 0.5, 0.95, 1.0):
            assert percentile([7.0], q) == 7.0

    def test_nearest_rank_on_known_population(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 0.5) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 1.0) == 100

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([30.0, 10.0, 20.0], 1.0) == 30.0

    @pytest.mark.parametrize("q", [-0.1, 1.5, math.nan])
    def test_fraction_out_of_range_rejected(self, q):
        with pytest.raises(ValueError):
            percentile([1.0], q)

    @given(st.lists(st.floats(0.0, 1e9), min_size=1, max_size=50))
    def test_result_is_always_a_member(self, values):
        assert percentile(values, 0.99) in values


class TestJainFairness:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_monopoly_degrades_to_one_over_n(self):
        assert jain_fairness_index([9.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_all_zero_and_empty_are_fair_by_convention(self):
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([1.0, -1.0])

    @given(st.lists(st.floats(1e-3, 1e6), min_size=1, max_size=40))
    def test_bounded_between_one_over_n_and_one(self, values):
        idx = jain_fairness_index(values)
        assert 1.0 / len(values) - 1e-12 <= idx <= 1.0 + 1e-12

    @given(st.lists(st.floats(0.0, 1e6), min_size=2, max_size=20))
    def test_permutation_invariant(self, values):
        assert jain_fairness_index(values) == pytest.approx(
            jain_fairness_index(list(reversed(values)))
        )

    @given(
        st.lists(st.floats(1e-3, 1e6), min_size=1, max_size=20),
        st.floats(1e-3, 1e3),
    )
    def test_scale_invariant(self, values, k):
        assert jain_fairness_index([k * v for v in values]) == pytest.approx(
            jain_fairness_index(values)
        )


class TestSummarize:
    def test_grouped_by_scheduler(self):
        rows = [row("a", 10.0), row("a", 20.0), row("b", 5.0)]
        summary = summarize_results(rows)
        assert summary["a"]["runs"] == 2
        assert summary["a"]["mean_makespan_us"] == 15.0
        assert summary["b"]["mean_makespan_us"] == 5.0
        assert summary["a"]["total_bytes"] == 200.0
