"""Statistics helper tests."""

import pytest

from repro.analysis.stats import geometric_mean, load_balance_index, summarize_results
from repro.experiments.harness import ExperimentResult


def row(scheduler, makespan, gflops=1.0):
    return ExperimentResult(
        experiment="t",
        machine="m",
        scheduler=scheduler,
        workload="w",
        makespan_us=makespan,
        gflops=gflops,
        bytes_transferred=100,
    )


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestLoadBalance:
    def test_perfect_balance(self):
        assert load_balance_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hot_worker(self):
        assert load_balance_index([9.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_degenerate(self):
        assert load_balance_index([]) == 1.0
        assert load_balance_index([0.0, 0.0]) == 1.0


class TestSummarize:
    def test_grouped_by_scheduler(self):
        rows = [row("a", 10.0), row("a", 20.0), row("b", 5.0)]
        summary = summarize_results(rows)
        assert summary["a"]["runs"] == 2
        assert summary["a"]["mean_makespan_us"] == 15.0
        assert summary["b"]["mean_makespan_us"] == 5.0
        assert summary["a"]["total_bytes"] == 200.0
