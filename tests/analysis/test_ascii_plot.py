"""ASCII chart tests."""

import pytest

from repro.analysis.ascii_plot import grouped_bars, hbar_chart, series_plot
from repro.utils.validation import ValidationError


class TestHbar:
    def test_bars_scale_to_peak(self):
        art = hbar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = art.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_reference_annotation(self):
        art = hbar_chart({"a": 1.0, "dmdas": 1.0}, reference="dmdas")
        assert "<- reference" in art

    def test_title_and_unit(self):
        art = hbar_chart({"a": 2.0}, title="T", unit="ms")
        assert art.startswith("T")
        assert "2ms" in art

    def test_zero_value_has_no_bar(self):
        art = hbar_chart({"a": 0.0, "b": 1.0})
        zero_line = [l for l in art.splitlines() if l.startswith("a")][0]
        assert "#" not in zero_line

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValidationError):
            hbar_chart({})
        with pytest.raises(ValidationError):
            hbar_chart({"a": -1.0})


class TestGroupedBars:
    def test_shared_scale_across_groups(self):
        art = grouped_bars(
            {"m1": {"s": 10.0}, "m2": {"s": 5.0}},
            width=20,
        )
        lines = [l for l in art.splitlines() if "#" in l]
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_group_headers(self):
        art = grouped_bars({"intel": {"mp": 1.0}})
        assert "intel:" in art

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            grouped_bars({})


class TestSeriesPlot:
    def test_axes_labels(self):
        art = series_plot([0, 1, 2], [5.0, 7.0, 6.0], height=6, width=30)
        assert "7" in art and "5" in art
        assert art.count("*") == 3

    def test_flat_series(self):
        art = series_plot([0, 1], [3.0, 3.0])
        assert "*" in art

    def test_rejects_mismatched(self):
        with pytest.raises(ValidationError):
            series_plot([1], [1.0, 2.0])
        with pytest.raises(ValidationError):
            series_plot([], [])
