"""Trace export tests (Chrome tracing JSON + CSV)."""

import json

from repro.analysis.export import to_chrome_trace, to_csv
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.registry import make_scheduler
from tests.conftest import make_fork_join_program


def run_trace(machine):
    program = make_fork_join_program(width=6)
    sim = Simulator(
        machine.platform(),
        make_scheduler("multiprio"),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
    )
    res = sim.run(program)
    return program, res.trace


class TestChromeTrace:
    def test_valid_json_with_all_tasks(self, hetero_machine):
        program, trace = run_trace(hetero_machine)
        doc = json.loads(to_chrome_trace(trace))
        tasks = [e for e in doc["traceEvents"] if e.get("cat") == "task"]
        assert len(tasks) == len(program)
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in tasks)

    def test_thread_names_cover_workers(self, hetero_machine):
        _, trace = run_trace(hetero_machine)
        doc = json.loads(to_chrome_trace(trace))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == len(trace.workers)

    def test_wait_events_emitted_when_stalled(self, hetero_machine):
        _, trace = run_trace(hetero_machine)
        doc = json.loads(to_chrome_trace(trace))
        waits = [e for e in doc["traceEvents"] if e.get("cat") == "transfer"]
        stalls = [r for r in trace.task_records if r.wait_time > 0]
        assert len(waits) == len(stalls)


class TestCsv:
    def test_header_and_rows(self, hetero_machine):
        program, trace = run_trace(hetero_machine)
        text = to_csv(trace)
        lines = text.strip().splitlines()
        assert lines[0].startswith("tid,type,worker")
        assert len(lines) == len(program) + 1

    def test_rows_sorted_by_start(self, hetero_machine):
        _, trace = run_trace(hetero_machine)
        lines = to_csv(trace).strip().splitlines()[1:]
        starts = [float(line.split(",")[5]) for line in lines]
        assert starts == sorted(starts)
