"""Schedule feasibility checker tests (it must catch every violation)."""

import pytest

from repro.analysis.validation import check_schedule
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode
from repro.runtime.trace import Trace
from repro.runtime.worker import Worker
from repro.utils.validation import ValidationError


@pytest.fixture
def setup():
    flow = TaskFlow()
    h = flow.data(8)
    a = flow.submit("a", [(h, AccessMode.W)], implementations=("cpu",))
    b = flow.submit("b", [(h, AccessMode.R)], implementations=("cpu",))
    program = flow.program()
    workers = [Worker(0, "cpu", 0), Worker(1, "cpu", 0)]
    return program, workers, (a, b)


def test_valid_schedule_passes(setup):
    program, workers, (a, b) = setup
    trace = Trace(workers)
    trace.record_task(a, workers[0], 0, 0, 5)
    trace.record_task(b, workers[0], 5, 5, 8)
    check_schedule(program, trace, workers)


def test_missing_task_detected(setup):
    program, workers, (a, _) = setup
    trace = Trace(workers)
    trace.record_task(a, workers[0], 0, 0, 5)
    with pytest.raises(ValidationError, match="records"):
        check_schedule(program, trace, workers)


def test_dependency_violation_detected(setup):
    program, workers, (a, b) = setup
    trace = Trace(workers)
    trace.record_task(a, workers[0], 0, 0, 5)
    trace.record_task(b, workers[1], 0, 3, 6)  # starts before a ends
    with pytest.raises(ValidationError, match="before predecessor"):
        check_schedule(program, trace, workers)


def test_worker_overlap_detected(setup):
    program, workers, (a, b) = setup
    trace = Trace(workers)
    trace.record_task(a, workers[0], 0, 0, 5)
    trace.record_task(b, workers[0], 5, 4.5, 8)  # overlaps on worker 0
    with pytest.raises(ValidationError):
        check_schedule(program, trace, workers)


def test_wrong_architecture_detected():
    flow = TaskFlow()
    h = flow.data(8)
    t = flow.submit("t", [(h, AccessMode.W)], implementations=("cuda",))
    program = flow.program()
    workers = [Worker(0, "cpu", 0)]
    trace = Trace(workers)
    trace.record_task(t, workers[0], 0, 0, 1)
    with pytest.raises(ValidationError, match="without an implementation"):
        check_schedule(program, trace, workers)


def test_inconsistent_timestamps_detected(setup):
    program, workers, (a, b) = setup
    trace = Trace(workers)
    trace.record_task(a, workers[0], 0, 0, 5)
    trace.record_task(b, workers[1], 9, 9, 8)  # end < start
    with pytest.raises(ValidationError, match="timestamps"):
        check_schedule(program, trace, workers)
