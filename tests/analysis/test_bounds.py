"""Makespan bound tests: every bound must actually bound."""

import pytest

from repro.analysis.bounds import efficiency_report, makespan_bounds
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode
from repro.schedulers.registry import make_scheduler
from tests.conftest import make_chain_program, make_fork_join_program


@pytest.fixture
def pm(hetero_machine):
    return AnalyticalPerfModel(hetero_machine.calibration())


class TestBounds:
    def test_chain_bound_is_the_chain(self, hetero_machine, pm):
        program = make_chain_program(n=6, flops=1e8)
        bounds = makespan_bounds(program, hetero_machine.platform(), pm)
        per_task = min(pm.estimate(program.tasks[0], a) for a in ("cpu", "cuda"))
        assert bounds.critical_path_us == pytest.approx(6 * per_task, rel=0.01)
        assert bounds.best_us == bounds.critical_path_us

    def test_wide_program_bound_is_work(self, hetero_machine, pm):
        flow = TaskFlow()
        for _ in range(200):
            flow.submit("gemm", [(flow.data(8), AccessMode.W)], flops=1e8,
                        implementations=("cpu", "cuda"))
        program = flow.program()
        bounds = makespan_bounds(program, hetero_machine.platform(), pm)
        assert bounds.work_bound_us > bounds.critical_path_us

    def test_exclusive_arch_bound(self, hetero_machine, pm):
        flow = TaskFlow()
        for _ in range(30):
            flow.submit("gemm", [(flow.data(8), AccessMode.W)], flops=1e9,
                        implementations=("cuda",))
        program = flow.program()
        bounds = makespan_bounds(program, hetero_machine.platform(), pm)
        # 30 GPU-only tasks over 2 GPU workers dominates total/6 workers.
        assert bounds.exclusive_work_bound_us > bounds.work_bound_us

    @pytest.mark.parametrize("name", ["multiprio", "dmdas", "eager", "lws"])
    def test_every_schedule_respects_bounds(self, hetero_machine, pm, name):
        program = make_fork_join_program(width=12, flops=2e8)
        sim = Simulator(hetero_machine.platform(), make_scheduler(name), pm, seed=0)
        res = sim.run(program)
        bounds = makespan_bounds(program, hetero_machine.platform(), pm)
        assert res.makespan >= bounds.best_us - 1e-6


class TestEfficiencyReport:
    def test_fields_and_range(self, hetero_machine, pm):
        program = make_fork_join_program(width=8)
        sim = Simulator(hetero_machine.platform(), make_scheduler("multiprio"), pm,
                        seed=0)
        res = sim.run(program)
        report = efficiency_report(res, program, hetero_machine.platform(), pm)
        assert 0.0 < report["efficiency"] <= 1.0
        assert report["best_bound_us"] <= report["makespan_us"] + 1e-6

    def test_better_scheduler_scores_higher(self, hetero_machine, pm):
        program = make_fork_join_program(width=24, flops=5e8)
        scores = {}
        for name in ("multiprio", "random"):
            sim = Simulator(hetero_machine.platform(), make_scheduler(name), pm, seed=0)
            res = sim.run(program)
            scores[name] = efficiency_report(
                res, program, hetero_machine.platform(), pm
            )["efficiency"]
        assert scores["multiprio"] >= scores["random"]
