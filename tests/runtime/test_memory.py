"""Transfer engine tests: links, routing, contention, coherence."""

import pytest

from repro.runtime.data import DataHandle
from repro.runtime.memory import Link, MemoryNode, TransferEngine
from repro.utils.validation import ValidationError


def engine_3nodes() -> TransferEngine:
    """RAM (0) <-> GPU0 (1), RAM <-> GPU1 (2); no GPU-GPU peer link."""
    nodes = [
        MemoryNode(0, "ram", "ram", "cpu"),
        MemoryNode(1, "gpu0", "gpu", "cuda"),
        MemoryNode(2, "gpu1", "gpu", "cuda"),
    ]
    links = [
        Link(0, 1, bandwidth=1000.0, latency=5.0),
        Link(1, 0, bandwidth=1000.0, latency=5.0),
        Link(0, 2, bandwidth=1000.0, latency=5.0),
        Link(2, 0, bandwidth=1000.0, latency=5.0),
    ]
    return TransferEngine(nodes, links)


class TestLink:
    def test_duration(self):
        link = Link(0, 1, bandwidth=100.0, latency=2.0)
        assert link.duration(1000) == pytest.approx(12.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValidationError):
            Link(0, 1, bandwidth=0.0, latency=1.0)

    def test_invalid_latency(self):
        with pytest.raises(ValidationError):
            Link(0, 1, bandwidth=1.0, latency=-1.0)


class TestFetch:
    def test_local_data_is_free(self):
        eng = engine_3nodes()
        h = DataHandle(0, 1000, home_node=1)
        assert eng.fetch(h, 1, now=10.0) == 10.0

    def test_direct_transfer_time(self):
        eng = engine_3nodes()
        h = DataHandle(0, 1000, home_node=0)
        arrival = eng.fetch(h, 1, now=0.0)
        assert arrival == pytest.approx(5.0 + 1.0)
        assert h.is_valid_on(1)
        assert h.is_valid_on(0)  # read replica, source stays valid

    def test_relay_through_ram(self):
        eng = engine_3nodes()
        h = DataHandle(0, 1000, home_node=1)
        arrival = eng.fetch(h, 2, now=0.0)
        assert arrival == pytest.approx(2 * (5.0 + 1.0))
        assert h.is_valid_on(2)

    def test_link_contention_serializes(self):
        eng = engine_3nodes()
        h1 = DataHandle(0, 1000, home_node=0)
        h2 = DataHandle(1, 1000, home_node=0)
        a1 = eng.fetch(h1, 1, now=0.0)
        a2 = eng.fetch(h2, 1, now=0.0)
        assert a2 == pytest.approx(a1 + 5.0 + 1.0)

    def test_different_links_are_independent(self):
        eng = engine_3nodes()
        h1 = DataHandle(0, 1000, home_node=0)
        h2 = DataHandle(1, 1000, home_node=0)
        a1 = eng.fetch(h1, 1, now=0.0)
        a2 = eng.fetch(h2, 2, now=0.0)
        assert a1 == pytest.approx(a2)

    def test_in_flight_transfer_shared(self):
        eng = engine_3nodes()
        h = DataHandle(0, 1000, home_node=0)
        a1 = eng.fetch(h, 1, now=0.0)
        a2 = eng.fetch(h, 1, now=1.0)  # second reader, same destination
        assert a2 == a1
        assert eng.total_bytes_moved() == 1000

    def test_zero_size_is_free(self):
        eng = engine_3nodes()
        h = DataHandle(0, 0, home_node=0)
        assert eng.fetch(h, 1, now=3.0) == 3.0
        assert eng.total_bytes_moved() == 0

    def test_unreachable_destination_raises(self):
        nodes = [MemoryNode(0, "a", "gpu", "cuda"), MemoryNode(1, "b", "gpu", "cuda")]
        eng = TransferEngine(nodes, [])
        h = DataHandle(0, 10, home_node=0)
        with pytest.raises(ValidationError, match="no route"):
            eng.fetch(h, 1, now=0.0)

    def test_picks_fastest_source(self):
        eng = engine_3nodes()
        h = DataHandle(0, 1000, home_node=1)
        eng.fetch(h, 0, now=0.0)  # replicate to RAM
        # Now valid on {0, 1}; fetching to 2 should go direct from RAM.
        arrival = eng.fetch(h, 2, now=100.0)
        assert arrival == pytest.approx(106.0)


class TestCoherence:
    def test_invalidate_others(self):
        eng = engine_3nodes()
        h = DataHandle(0, 1000, home_node=0)
        eng.fetch(h, 1, now=0.0)
        eng.fetch(h, 2, now=0.0)
        assert h.valid_nodes == {0, 1, 2}
        eng.invalidate_others(h, keep=1)
        assert h.valid_nodes == {1}

    def test_estimate_has_no_side_effects(self):
        eng = engine_3nodes()
        h = DataHandle(0, 1000, home_node=0)
        est = eng.estimate_fetch(h, 1, now=0.0)
        assert est == pytest.approx(6.0)
        assert not h.is_valid_on(1)
        assert eng.total_bytes_moved() == 0

    def test_estimate_accounts_for_queueing(self):
        eng = engine_3nodes()
        h1 = DataHandle(0, 1000, home_node=0)
        h2 = DataHandle(1, 1000, home_node=0)
        eng.fetch(h1, 1, now=0.0)
        est = eng.estimate_fetch(h2, 1, now=0.0)
        assert est == pytest.approx(12.0)

    def test_reset_runtime_state(self):
        eng = engine_3nodes()
        h = DataHandle(0, 1000, home_node=0)
        eng.fetch(h, 1, now=0.0)
        eng.reset_runtime_state()
        assert eng.total_bytes_moved() == 0
        assert all(link.busy_until == 0.0 for link in eng.links())

    def test_duplicate_link_rejected(self):
        nodes = [MemoryNode(0, "a", "ram", "cpu"), MemoryNode(1, "b", "gpu", "cuda")]
        links = [Link(0, 1, 1.0, 0.0), Link(0, 1, 2.0, 0.0)]
        with pytest.raises(ValidationError, match="duplicate"):
            TransferEngine(nodes, links)


class TestTwoClassContention:
    """One wire, two traffic classes: demand transfers jump the queued
    prefetch backlog but can never overlap the transfer already on the
    wire (the double-booking bug served both at full bandwidth)."""

    def link(self):
        return Link(0, 1, bandwidth=1.0, latency=0.0)

    def test_demand_waits_out_the_prefetch_on_the_wire(self):
        link = self.link()
        assert link.reserve(0.0, 100, prefetch=True) == pytest.approx(100.0)
        # Arrives mid-prefetch: must wait for the wire, so it finishes
        # strictly later (at 150) than a double-booked overlap (60) would.
        end = link.reserve(10.0, 50, prefetch=False)
        assert end == pytest.approx(150.0)
        assert link.demand_busy_until == pytest.approx(150.0)

    def test_demand_jumps_the_queued_prefetch_backlog(self):
        link = self.link()
        link.reserve(0.0, 100, prefetch=True)  # on the wire: [0, 100)
        link.reserve(0.0, 100, prefetch=True)  # queued:      [100, 200)
        # Only the transmitting prefetch blocks the demand; the queued
        # one is jumped, so the demand still lands at 150, not 250.
        assert link.reserve(10.0, 50, prefetch=False) == pytest.approx(150.0)
        assert link.busy_until == pytest.approx(200.0)

    def test_demand_after_the_prefetch_drained_is_unobstructed(self):
        link = self.link()
        link.reserve(0.0, 100, prefetch=True)
        assert link.reserve(250.0, 50, prefetch=False) == pytest.approx(300.0)

    def test_queue_estimate_agrees_with_reserve(self):
        link = self.link()
        link.reserve(0.0, 100, prefetch=True)
        est = link.queue_estimate(10.0, 50, prefetch=False)
        assert est == pytest.approx(link.reserve(10.0, 50, prefetch=False))

    def test_prune_forgets_finished_spans_only(self):
        link = self.link()
        link.reserve(0.0, 100, prefetch=True)
        link.reserve(0.0, 100, prefetch=True)
        link.prune_prefetch_spans(150.0)
        assert list(link._prefetch_spans) == [(100.0, 200.0)]
        link.prune_prefetch_spans(200.0)
        assert not link._prefetch_spans
