"""Platform construction tests."""

import pytest

from repro.runtime.platform_config import (
    LinkSpec,
    MachineSpec,
    MemoryNodeSpec,
    Platform,
    simple_machine,
)
from repro.utils.validation import ValidationError


class TestSimpleMachine:
    def test_worker_counts(self):
        plat = Platform(simple_machine(n_cpus=4, n_gpus=2, gpu_streams=3))
        assert plat.n_workers() == 4 + 2 * 3
        assert plat.n_workers("cpu") == 4
        assert plat.n_workers("cuda") == 6

    def test_memory_topology(self):
        plat = Platform(simple_machine(n_cpus=2, n_gpus=2))
        assert len(plat.nodes) == 3
        assert plat.ram_node().mid == 0
        assert [n.kind for n in plat.nodes] == ["ram", "gpu", "gpu"]

    def test_workers_of_node(self):
        plat = Platform(simple_machine(n_cpus=2, n_gpus=1, gpu_streams=2))
        assert len(plat.workers_of_node(0)) == 2
        assert len(plat.workers_of_node(1)) == 2
        assert all(w.arch == "cuda" for w in plat.workers_of_node(1))

    def test_nodes_of_arch(self):
        plat = Platform(simple_machine(n_cpus=2, n_gpus=2))
        assert [n.mid for n in plat.nodes_of_arch("cuda")] == [1, 2]

    def test_links_bidirectional(self):
        plat = Platform(simple_machine(n_cpus=1, n_gpus=1))
        assert plat.transfers.link(0, 1) is not None
        assert plat.transfers.link(1, 0) is not None
        assert plat.transfers.link(1, 1) is None

    def test_archs_sorted(self):
        plat = Platform(simple_machine())
        assert plat.archs == ["cpu", "cuda"]


class TestValidation:
    def test_no_workers_rejected(self):
        spec = MachineSpec("m", nodes=(MemoryNodeSpec("ram", "ram", "cpu", 0),))
        with pytest.raises(ValidationError, match="no workers"):
            Platform(spec)

    def test_negative_worker_count_rejected(self):
        with pytest.raises(ValidationError):
            MemoryNodeSpec("ram", "ram", "cpu", -1)

    def test_unknown_link_endpoint_rejected(self):
        spec = MachineSpec(
            "m",
            nodes=(MemoryNodeSpec("ram", "ram", "cpu", 1),),
            links=(LinkSpec("ram", "gpu9", 10.0),),
        )
        with pytest.raises(ValidationError, match="unknown memory node"):
            Platform(spec)

    def test_bad_node_kind_rejected(self):
        from repro.runtime.memory import MemoryNode

        with pytest.raises(ValidationError):
            MemoryNode(0, "x", "disk", "cpu")

    def test_worker_names_unique(self):
        plat = Platform(simple_machine(n_cpus=3, n_gpus=2, gpu_streams=2))
        names = [w.name for w in plat.workers]
        assert len(names) == len(set(names))
