"""Performance model tests: calibration, ramps, history learning."""

import numpy as np
import pytest

from repro.runtime.perfmodel import (
    AnalyticalPerfModel,
    CalibrationTable,
    HistoryPerfModel,
    KernelCalibration,
)
from repro.runtime.task import Task
from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError


def table(**entries) -> CalibrationTable:
    base = {
        ("gemm", "cpu"): KernelCalibration(10.0, 1.0),
        ("gemm", "cuda"): KernelCalibration(1000.0, 10.0, ramp_flops=1e8),
        ("*", "cpu"): KernelCalibration(5.0, 1.0),
        ("*", "cuda"): KernelCalibration(500.0, 10.0),
    }
    base.update(entries)
    return CalibrationTable(base)


def task(type_name="gemm", flops=1e9) -> Task:
    return Task(0, type_name, flops=flops, implementations=("cpu", "cuda"))


class TestKernelCalibration:
    def test_time_is_overhead_plus_flops(self):
        calib = KernelCalibration(10.0, overhead_us=2.0)  # 10 GF = 1e4 flop/us
        assert calib.time_us(1e6) == pytest.approx(2.0 + 100.0)

    def test_zero_flops_costs_overhead_only(self):
        calib = KernelCalibration(10.0, overhead_us=2.0, ramp_flops=1e9)
        assert calib.time_us(0.0) == 2.0

    def test_ramp_penalizes_small_kernels(self):
        fast_but_wide = KernelCalibration(1000.0, 0.0, ramp_flops=1e8)
        slow_but_lean = KernelCalibration(20.0, 0.0, ramp_flops=0.0)
        small, large = 1e5, 1e10
        assert slow_but_lean.time_us(small) < fast_but_wide.time_us(small)
        assert fast_but_wide.time_us(large) < slow_but_lean.time_us(large)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValidationError):
            KernelCalibration(0.0)
        with pytest.raises(ValidationError):
            KernelCalibration(1.0, overhead_us=-1.0)
        with pytest.raises(ValidationError):
            KernelCalibration(1.0, ramp_flops=-5.0)


class TestCalibrationTable:
    def test_specific_entry_wins_over_default(self):
        t = table()
        assert t.lookup("gemm", "cpu").gflops == 10.0
        assert t.lookup("unknown", "cpu").gflops == 5.0

    def test_missing_arch_raises(self):
        t = CalibrationTable({("gemm", "cpu"): KernelCalibration(1.0)})
        with pytest.raises(ValidationError, match="no calibration"):
            t.lookup("gemm", "cuda")

    def test_has(self):
        t = table()
        assert t.has("gemm", "cuda")
        assert t.has("anything", "cpu")  # default entry
        assert not CalibrationTable({}).has("gemm", "cpu")

    def test_with_entry_is_a_copy(self):
        t = table()
        t2 = t.with_entry("gemm", "cpu", KernelCalibration(99.0))
        assert t.lookup("gemm", "cpu").gflops == 10.0
        assert t2.lookup("gemm", "cpu").gflops == 99.0


class TestAnalyticalModel:
    def test_estimate_matches_calibration(self):
        model = AnalyticalPerfModel(table())
        t = task(flops=1e9)
        assert model.estimate(t, "cpu") == pytest.approx(1.0 + 1e9 / 1e4)

    def test_estimate_memoized_per_model(self):
        model = AnalyticalPerfModel(table())
        t = task()
        first = model.estimate(t, "cpu")
        assert model._memo[(t.type_name, "cpu", t.flops)] == first
        # A structurally identical task hits the shared memo entry.
        model.estimate(task(), "cpu")
        assert len(model._memo) == 1

    def test_models_with_different_tables_do_not_share_cache(self):
        # Two models over the *same* task objects (one perf model per
        # cluster node) must not poison each other's cached estimates.
        fast = AnalyticalPerfModel(table())
        slow = AnalyticalPerfModel(
            table().with_entry("gemm", "cpu", KernelCalibration(1.0, 1.0))
        )
        t = task()
        first_fast = fast.estimate(t, "cpu")
        first_slow = slow.estimate(t, "cpu")
        assert first_slow > first_fast
        # Re-querying in either order returns each model's own value.
        assert fast.estimate(t, "cpu") == first_fast
        assert slow.estimate(t, "cpu") == first_slow

    def test_deterministic_without_noise(self):
        model = AnalyticalPerfModel(table())
        t = task()
        rng = make_rng(0)
        assert model.sample(t, "cpu", rng) == model.estimate(t, "cpu")

    def test_noise_has_unit_mean(self):
        model = AnalyticalPerfModel(table(), noise_sigma=0.3)
        t = task()
        rng = make_rng(0)
        samples = np.array([model.sample(t, "cpu", rng) for _ in range(4000)])
        assert samples.mean() == pytest.approx(model.estimate(t, "cpu"), rel=0.03)
        assert samples.std() > 0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValidationError):
            AnalyticalPerfModel(table(), noise_sigma=-0.1)


class TestHistoryModel:
    def test_cold_start_falls_back_to_truth(self):
        truth = AnalyticalPerfModel(table())
        model = HistoryPerfModel(truth, min_samples=3)
        t = task()
        assert model.estimate(t, "cpu") == truth.estimate(t, "cpu")

    def test_learns_from_measurements(self):
        truth = AnalyticalPerfModel(table())
        model = HistoryPerfModel(truth, min_samples=2)
        t = task()
        model.record(t, "cpu", 500.0)
        model.record(t, "cpu", 700.0)
        assert model.estimate(t, "cpu") == pytest.approx(600.0)
        assert model.n_samples(t, "cpu") == 2

    def test_buckets_separate_sizes(self):
        truth = AnalyticalPerfModel(table())
        model = HistoryPerfModel(truth, min_samples=1)
        small, big = task(flops=1e6), task(flops=1e9)
        model.record(small, "cpu", 1.0)
        assert model.estimate(big, "cpu") == truth.estimate(big, "cpu")

    def test_cold_factor_scales_fallback(self):
        truth = AnalyticalPerfModel(table())
        model = HistoryPerfModel(truth, min_samples=1, cold_factor=2.0)
        t = task()
        assert model.estimate(t, "cpu") == pytest.approx(2.0 * truth.estimate(t, "cpu"))

    def test_invalid_params(self):
        truth = AnalyticalPerfModel(table())
        with pytest.raises(ValidationError):
            HistoryPerfModel(truth, min_samples=0)
        with pytest.raises(ValidationError):
            HistoryPerfModel(truth, cold_factor=0.0)
