"""Fault injection and fault-tolerant execution tests."""

from __future__ import annotations

import pytest

from repro.platform.machines import cpu_only, small_hetero
from repro.runtime.engine import Simulator
from repro.runtime.faults import (
    FaultModel,
    LinkDegradation,
    parse_fault_rates,
    parse_kill_spec,
)
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, TaskState
from repro.schedulers.eager import Eager
from repro.schedulers.registry import make_scheduler
from repro.utils.validation import (
    DataLossError,
    RetryExhaustedError,
    ValidationError,
)
from tests.conftest import make_chain_program, make_fork_join_program


def simulate(machine, program, scheduler=None, fault_model=None, **kw):
    sim = Simulator(
        machine.platform(),
        scheduler or Eager(),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        fault_model=fault_model,
        **kw,
    )
    return sim, sim.run(program)


def make_shared_read_program(width: int = 12, flops: float = 5e8):
    """One CPU-written handle fanned out to dual-impl readers.

    Readers only *read*, so the RAM replica survives any GPU-side copy —
    a dead GPU then costs replicas but never the last one.
    """
    flow = TaskFlow("shared-read")
    h = flow.data(4 * 2**20, label="h")
    flow.submit("init", [(h, AccessMode.W)], flops=1e6, implementations=("cpu",))
    outs = [flow.data(4096, label=f"o{i}") for i in range(width)]
    for out in outs:
        flow.submit(
            "gemm",
            [(h, AccessMode.R), (out, AccessMode.W)],
            flops=flops,
            implementations=("cpu", "cuda"),
        )
    return flow.program()


def make_gpu_chain_program(n: int = 6, flops: float = 5e8):
    """A cuda-only RW chain: every intermediate lives only on the GPU."""
    flow = TaskFlow("gpu-chain")
    h = flow.data(2**20, label="h")
    flow.submit("init", [(h, AccessMode.W)], flops=flops, implementations=("cuda",))
    for _ in range(n - 1):
        flow.submit("gemm", [(h, AccessMode.RW)], flops=flops,
                    implementations=("cuda",))
    return flow.program()


class TestTransientFailures:
    def test_failed_tasks_are_retried_to_completion(self, hetero_machine):
        program = make_fork_join_program(width=10)
        _, base = simulate(hetero_machine, program)
        model = FaultModel(task_failure_rate=0.4, max_retries=100, seed=1)
        _, res = simulate(hetero_machine, program, fault_model=model)
        assert all(t.state is TaskState.DONE for t in program.tasks)
        assert res.faults is not None
        assert res.faults.task_failures > 0
        assert res.faults.retries == res.faults.task_failures
        assert res.faults.wasted_exec_us > 0.0
        assert res.makespan > base.makespan  # retries + backoff cost time

    def test_retry_exhaustion_raises_typed_error(self, hetero_machine):
        program = make_chain_program(n=3)
        model = FaultModel(task_failure_rate=1.0, max_retries=2, seed=0)
        with pytest.raises(RetryExhaustedError, match="max_retries=2"):
            simulate(hetero_machine, program, fault_model=model)

    def test_per_arch_rate_spares_unlisted_archs(self, cpu_machine):
        program = make_chain_program(n=4)
        model = FaultModel(task_failure_rate={"cuda": 1.0}, max_retries=0, seed=0)
        _, res = simulate(cpu_machine, program, fault_model=model)
        assert res.faults.task_failures == 0  # cpu rate defaults to 0

    def test_arch_failure_rate_lookup(self):
        model = FaultModel(task_failure_rate={"cuda": 0.2})
        assert model.arch_failure_rate("cuda") == 0.2
        assert model.arch_failure_rate("cpu") == 0.0
        assert FaultModel(task_failure_rate=0.1).arch_failure_rate("cpu") == 0.1

    def test_backoff_doubles_per_failure(self):
        model = FaultModel(retry_backoff_us=50.0)
        assert [model.backoff_us(n) for n in (1, 2, 3)] == [50.0, 100.0, 200.0]


class TestDeterminism:
    def test_disabled_model_is_bit_identical(self, hetero_machine):
        program = make_fork_join_program(width=10)
        _, base = simulate(hetero_machine, program)
        zero = FaultModel(task_failure_rate=0.0, seed=0)
        _, res = simulate(hetero_machine, program, fault_model=zero)
        assert res.makespan == base.makespan
        assert res.bytes_transferred == base.bytes_transferred
        assert base.faults is None
        assert res.faults.task_failures == 0

    def test_seeded_fault_runs_replay_identically(self, hetero_machine):
        program = make_fork_join_program(width=10)
        model = FaultModel(task_failure_rate=0.3, max_retries=100, seed=7)
        _, res1 = simulate(hetero_machine, program, fault_model=model)
        _, res2 = simulate(hetero_machine, program, fault_model=model)
        assert res1.makespan == res2.makespan
        assert res1.faults.as_dict() == res2.faults.as_dict()

    def test_mtbf_schedule_is_seed_deterministic(self, hetero_machine):
        platform = hetero_machine.platform()
        model = FaultModel(worker_mtbf_us=1e5, seed=3)
        first = model.failure_schedule(platform)
        model.reset()
        assert model.failure_schedule(platform) == first
        assert len(first) == len(platform.workers)


class TestWorkerFailStop:
    def test_kill_one_stream_recovers_and_completes(self, hetero_machine):
        # hetero_machine has 2 GPU streams: killing one leaves the device
        # memory alive through its sibling.
        program = make_gpu_chain_program(n=8)
        _, base = simulate(hetero_machine, program)
        gpu_wids = [w.wid for w in hetero_machine.platform().workers
                    if w.arch == "cuda"]
        model = FaultModel(worker_kills={gpu_wids[0]: base.makespan / 2}, seed=0)
        sim, res = simulate(hetero_machine, program, fault_model=model)
        assert all(t.state is TaskState.DONE for t in program.tasks)
        assert res.faults.worker_failures == 1
        assert res.faults.tasks_recovered >= 1  # the running chain link
        assert res.faults.lost_replica_bytes == 0  # node survived
        assert res.makespan > base.makespan
        assert "cuda" in sim.ctx.available_archs  # sibling stream remains

    def test_dead_node_replicas_are_invalidated(self):
        machine = small_hetero(n_cpus=2, n_gpus=1, gpu_streams=1)
        program = make_shared_read_program(width=12)
        _, base = simulate(machine, program)
        gpu_wid = next(w.wid for w in machine.platform().workers
                       if w.arch == "cuda")
        model = FaultModel(worker_kills={gpu_wid: base.makespan / 3}, seed=0)
        sim, res = simulate(machine, program, fault_model=model)
        assert all(t.state is TaskState.DONE for t in program.tasks)
        assert res.faults.worker_failures == 1
        # The GPU held a read-only copy of the shared handle: dropped and
        # re-served from the surviving RAM replica, never fatal.
        assert res.faults.lost_replica_bytes > 0
        assert "cuda" not in sim.ctx.available_archs
        assert all(w.arch == "cpu" for w in sim.ctx.workers)

    def test_sole_replica_on_dead_node_raises_data_loss(self):
        machine = small_hetero(n_cpus=1, n_gpus=1, gpu_streams=1)
        program = make_gpu_chain_program(n=6)
        _, base = simulate(machine, program)
        gpu_wid = next(w.wid for w in machine.platform().workers
                       if w.arch == "cuda")
        model = FaultModel(worker_kills={gpu_wid: base.makespan / 2}, seed=0)
        with pytest.raises(DataLossError, match="only replica"):
            simulate(machine, program, fault_model=model)

    def test_every_policy_survives_a_stream_kill(self, hetero_machine):
        program = make_fork_join_program(width=12, flops=5e8)
        gpu_wids = [w.wid for w in hetero_machine.platform().workers
                    if w.arch == "cuda"]
        for name in ("multiprio", "dmdas", "heteroprio", "dm", "eager"):
            _, base = simulate(
                hetero_machine, program, scheduler=make_scheduler(name)
            )
            model = FaultModel(
                worker_kills={gpu_wids[0]: base.makespan / 2}, seed=0
            )
            _, res = simulate(
                hetero_machine, program,
                scheduler=make_scheduler(name), fault_model=model,
            )
            assert all(t.state is TaskState.DONE for t in program.tasks), name
            assert res.faults.worker_failures == 1, name

    def test_scripted_kill_beyond_platform_rejected(self, cpu_machine):
        program = make_chain_program(n=2)
        model = FaultModel(worker_kills={99: 1000.0})
        with pytest.raises(ValidationError, match="cannot kill worker 99"):
            simulate(cpu_machine, program, fault_model=model)


class TestLinkDegradation:
    def test_degraded_window_slows_transfers(self, hetero_machine):
        flow = TaskFlow()
        big = flow.data(64 * 2**20, label="big")
        flow.submit("init", [(big, AccessMode.W)], flops=1e6,
                    implementations=("cpu",))
        flow.submit("gemm", [(big, AccessMode.R)], flops=1e6,
                    implementations=("cuda",))
        program = flow.program()
        _, base = simulate(hetero_machine, program)
        model = FaultModel(
            link_degradations=[LinkDegradation(0.0, 1e12, factor=8.0)], seed=0
        )
        _, res = simulate(hetero_machine, program, fault_model=model)
        assert res.makespan > base.makespan

    def test_window_validation(self):
        with pytest.raises(ValidationError, match="end > start"):
            LinkDegradation(10.0, 5.0, factor=2.0)
        with pytest.raises(ValidationError, match="factor"):
            LinkDegradation(0.0, 1.0, factor=0.0)

    def test_windows_match_links(self):
        everywhere = LinkDegradation(0.0, 1.0, factor=2.0)
        one_link = LinkDegradation(0.0, 1.0, factor=2.0, src=0, dst=1)
        assert everywhere.matches(3, 4)
        assert one_link.matches(0, 1)
        assert not one_link.matches(1, 0)
        model = FaultModel(link_degradations=[one_link])
        assert model.degradation_windows(0, 1) == ((0.0, 1.0, 2.0),)
        assert model.degradation_windows(1, 0) == ()


class TestCliSpecs:
    def test_parse_kill_spec(self):
        assert parse_kill_spec("2@15000") == (2, 15000.0)
        for bad in ("2", "x@5", "2@", "-1@5", "1@-5"):
            with pytest.raises(ValidationError):
                parse_kill_spec(bad)

    def test_parse_fault_rates(self):
        assert parse_fault_rates("0.05") == 0.05
        assert parse_fault_rates("cuda=0.1,cpu=0.01") == {"cuda": 0.1, "cpu": 0.01}
        for bad in ("1.5", "cuda=2", "cuda", "=0.1"):
            with pytest.raises(ValidationError):
                parse_fault_rates(bad)


class TestIdleAccounting:
    """idle_frac_by_arch under faults: dead workers are judged over their
    lifetime, and the data stall of a failed attempt counts as waiting."""

    def test_dead_worker_judged_over_its_lifetime(self):
        machine = cpu_only(n_cpus=2)
        flow = TaskFlow("indep")
        for i in range(4):
            h = flow.data(4096, label=f"h{i}")
            flow.submit(
                "gemm", [(h, AccessMode.W)], flops=2e8, implementations=("cpu",)
            )
        program = flow.program()
        d = AnalyticalPerfModel(machine.calibration()).estimate(
            program.tasks[0], "cpu"
        )
        # Worker 1 dies mid-execution at 1.5d, busy every instant of its
        # life; worker 0 then mops up and is never idle either. Judging
        # the casualty against the full makespan (the bug) would read it
        # as 50% idle and report 0.25 for the architecture.
        model = FaultModel(worker_kills=[(1, 1.5 * d)], seed=0)
        _, res = simulate(machine, program, fault_model=model)
        assert res.faults is not None and res.faults.worker_failures == 1
        assert res.makespan == pytest.approx(3 * d)
        assert res.idle_frac_by_arch["cpu"] == pytest.approx(0.0, abs=1e-9)

    def test_failed_attempt_stall_counts_as_waiting(self):
        machine = small_hetero(n_cpus=1, n_gpus=1)
        flow = TaskFlow("stall")
        h = flow.data(6 * 2**20, label="h")
        out = flow.data(4096, label="out")
        flow.submit("init", [(h, AccessMode.W)], flops=1e6, implementations=("cpu",))
        flow.submit(
            "gemm",
            [(h, AccessMode.R), (out, AccessMode.W)],
            flops=5e8,
            implementations=("cuda",),
        )
        program = flow.program()
        model = FaultModel(
            task_failure_rate={"cuda": 0.7}, max_retries=100, seed=3
        )
        sim, res = simulate(machine, program, fault_model=model)
        assert res.faults is not None and res.faults.task_failures >= 1
        gpu = sim.platform.workers_of_arch("cuda")[0]
        link = next(
            ln
            for ln in sim.platform.transfers.links()
            if ln.src == 0 and ln.dst == gpu.memory_node
        )
        # The GPU stalls on h's transfer exactly once — the first attempt
        # fetches it, and the replica survives the rollback — so its
        # active time is the burned attempts, the final run, and one
        # transfer stall. Dropping the stall of the *failed* first
        # attempt (the bug) overstates idleness by tau/makespan.
        tau = link.latency + h.size / link.bandwidth
        d_gpu = sim.perfmodel.estimate(program.tasks[1], "cuda")
        active = res.faults.wasted_exec_us + d_gpu + tau
        expected_idle = 1.0 - active / res.makespan
        assert res.idle_frac_by_arch["cuda"] == pytest.approx(
            expected_idle, abs=1e-9
        )
