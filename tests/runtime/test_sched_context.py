"""SchedContext tests: the scheduler's window into the runtime."""

import pytest

from repro.runtime.engine import SchedContext
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode
from repro.utils.validation import SchedulingError


@pytest.fixture
def ctx(hetero_machine):
    return SchedContext(
        hetero_machine.platform(), AnalyticalPerfModel(hetero_machine.calibration())
    )


def gemm(flow, flops=2e9, impls=("cpu", "cuda")):
    return flow.submit("gemm", [(flow.data(1 << 20), AccessMode.RW)], flops=flops,
                       implementations=impls)


class TestArchQueries:
    def test_available_archs(self, ctx):
        assert ctx.available_archs == ("cpu", "cuda")

    def test_best_arch_for_gpu_friendly_task(self, ctx):
        task = gemm(TaskFlow())
        assert ctx.best_arch(task) == "cuda"
        assert ctx.second_best_arch(task) == "cpu"

    def test_best_arch_cached(self, ctx):
        task = gemm(TaskFlow())
        ctx.best_arch(task)
        assert task.sched["_best_arch"] == "cuda"

    def test_single_impl_second_best_none(self, ctx):
        task = gemm(TaskFlow(), impls=("cpu",))
        assert ctx.best_arch(task) == "cpu"
        assert ctx.second_best_arch(task) is None

    def test_exec_archs_filters_platform(self, ctx):
        task = gemm(TaskFlow(), impls=("cuda", "fpga"))
        assert ctx.exec_archs(task) == ["cuda"]
        assert ctx.can_exec(task, "cuda")
        assert not ctx.can_exec(task, "fpga")

    def test_no_executable_arch_raises(self, ctx):
        task = gemm(TaskFlow(), impls=("fpga",))
        with pytest.raises(SchedulingError):
            ctx.best_arch(task)


class TestDataQueries:
    def test_transfer_estimate_zero_when_local(self, ctx):
        flow = TaskFlow()
        task = gemm(flow)
        assert ctx.transfer_estimate(task, 0) == 0.0  # data starts in RAM

    def test_transfer_estimate_positive_when_remote(self, ctx):
        flow = TaskFlow()
        task = gemm(flow)
        assert ctx.transfer_estimate(task, 1) > 0.0

    def test_transfer_estimate_combines_without_double_count(self, ctx):
        """Two missing handles over the same link: the total must be less
        than the sum of the two independent full estimates once queueing
        exists, but at least the single-handle estimate."""
        flow = TaskFlow()
        h1, h2 = flow.data(8 << 20), flow.data(8 << 20)
        task = flow.submit(
            "gemm", [(h1, AccessMode.R), (h2, AccessMode.R)], flops=1e9,
            implementations=("cuda",),
        )
        single = ctx.platform.transfers.estimate_fetch(h1, 1, 0.0)
        combined = ctx.transfer_estimate(task, 1)
        assert combined >= single
        assert combined <= 2.2 * single

    def test_bytes_on_node(self, ctx):
        flow = TaskFlow()
        h = flow.data(1000)
        task = flow.submit("k", [(h, AccessMode.R)])
        assert ctx.bytes_on_node(task, 0) == 1000
        assert ctx.bytes_on_node(task, 1) == 0

    def test_prefetch_registers_replica(self, ctx):
        flow = TaskFlow()
        h = flow.data(1 << 20)
        task = flow.submit("gemm", [(h, AccessMode.R)], flops=1e9,
                           implementations=("cuda",))
        ctx.prefetch(task, 1)
        assert h.is_valid_on(1)

    def test_workers_shortcuts(self, ctx):
        assert ctx.n_workers() == len(ctx.workers)
        assert ctx.n_workers("cpu") == len(ctx.workers_of_arch("cpu")) == 4
