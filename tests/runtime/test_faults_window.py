"""Fault rollbacks under a bounded submission window (regression).

A rolled-back task keeps its submission slot until it eventually
completes (StarPU semantics), so fault handling must neither exceed the
window nor strand the reveal loop. The invariant checker's ``window``
family turns either failure into a hard error, so these runs double as
the regression net for the fault x window accounting audit.
"""

from __future__ import annotations

import pytest

from repro.apps.dense import cholesky_program
from repro.experiments.faults_sweep import run_faults_sweep
from repro.platform.machines import small_hetero
from repro.runtime.engine import Simulator
from repro.runtime.faults import FaultModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.registry import make_scheduler


def run(program, *, window, fault_model, scheduler="multiprio"):
    machine = small_hetero(n_cpus=4, n_gpus=1, gpu_streams=2)
    sim = Simulator(
        machine.platform(),
        make_scheduler(scheduler),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        submission_window=window,
        fault_model=fault_model,
        check_invariants=True,
    )
    return sim.run(program)


@pytest.mark.parametrize("window", [1, 2, 5])
def test_transient_faults_respect_window(window):
    program = cholesky_program(5, 384)
    res = run(
        program, window=window,
        fault_model=FaultModel(task_failure_rate=0.3, max_retries=100, seed=1),
    )
    assert res.n_tasks == len(program)
    assert res.faults is not None and res.faults.task_failures > 0


def test_worker_kill_recovery_respects_window():
    program = cholesky_program(5, 384)
    res = run(
        program, window=2,
        fault_model=FaultModel(worker_kills=[(4, 200.0)], seed=0),
    )
    assert res.n_tasks == len(program)
    assert res.faults is not None and res.faults.worker_failures == 1


def test_faults_sweep_runs_under_window_one():
    result = run_faults_sweep(
        n_tiles=4, tile_size=384, rates=(0.1,),
        schedulers=("multiprio",), max_retries=100, window=1,
    )
    assert len(result.rows) == 1
    row = result.rows[0]
    assert row.makespan_us > 0 and row.stats.task_failures > 0
    assert result.killed_rows and result.killed_rows[0].stats.tasks_recovered >= 0
