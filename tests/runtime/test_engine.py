"""Simulation engine tests: correctness, determinism, pipelining."""

import heapq

import pytest

from repro.analysis.validation import check_schedule
from repro.runtime.dag import critical_path_length
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, Task, TaskState
from repro.runtime.worker import Worker
from repro.runtime.events import TASK_COMPLETION
from repro.schedulers.base import Scheduler
from repro.schedulers.eager import Eager
from repro.schedulers.registry import make_scheduler
from repro.utils.validation import DeadlockError, SchedulingError
from tests.conftest import make_chain_program, make_fork_join_program


def simulate(machine, program, scheduler=None, **kw):
    sim = Simulator(
        machine.platform(),
        scheduler or Eager(),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        **kw,
    )
    return sim, sim.run(program)


class TestCompleteness:
    def test_all_tasks_executed(self, hetero_machine):
        program = make_fork_join_program(width=8)
        sim, res = simulate(hetero_machine, program)
        assert res.n_tasks == len(program)
        assert all(t.state is TaskState.DONE for t in program.tasks)

    def test_schedule_is_feasible(self, hetero_machine):
        program = make_fork_join_program(width=8)
        sim, res = simulate(hetero_machine, program)
        check_schedule(program, res.trace, sim.platform.workers)

    def test_empty_program(self, hetero_machine):
        program = TaskFlow("empty").program()
        _, res = simulate(hetero_machine, program)
        assert res.makespan == 0.0
        assert res.n_tasks == 0

    def test_chain_respects_order(self, hetero_machine):
        program = make_chain_program(n=6)
        sim, res = simulate(hetero_machine, program)
        records = sorted(res.trace.task_records, key=lambda r: r.start)
        tids = [r.tid for r in records]
        assert tids == sorted(tids)


class TestDeterminism:
    def test_same_seed_same_makespan(self, hetero_machine):
        program = make_fork_join_program(width=10)
        _, res1 = simulate(hetero_machine, program)
        _, res2 = simulate(hetero_machine, program)
        assert res1.makespan == res2.makespan

    def test_program_reusable_across_runs(self, hetero_machine, two_gpu_machine):
        program = make_fork_join_program(width=10)
        _, res1 = simulate(hetero_machine, program)
        _, res2 = simulate(two_gpu_machine, program)
        _, res3 = simulate(hetero_machine, program)
        assert res1.makespan == res3.makespan
        assert res2.makespan != 0

    def test_reset_runtime_state_clears_sched_scratch(self, hetero_machine):
        program = make_fork_join_program(width=4)
        simulate(hetero_machine, program)
        assert all(t.sched for t in program.tasks)  # runs leave records behind
        program.reset_runtime_state()
        assert all(not t.sched for t in program.tasks)

    def test_program_reusable_across_different_arch_platforms(
        self, hetero_machine, cpu_machine
    ):
        """A stale per-task scratch (e.g. a cached best arch of 'cuda')
        leaking from a hetero run must not poison a CPU-only rerun."""
        program = make_fork_join_program(width=6)
        _, res_gpu = simulate(
            hetero_machine, program, scheduler=make_scheduler("multiprio")
        )
        _, res_cpu = simulate(
            cpu_machine, program, scheduler=make_scheduler("multiprio")
        )
        assert all(t.state is TaskState.DONE for t in program.tasks)
        assert res_gpu.makespan > 0 and res_cpu.makespan > 0


class TestTimingModel:
    def test_makespan_at_least_critical_path(self, hetero_machine):
        program = make_chain_program(n=8, flops=1e8)
        pm = AnalyticalPerfModel(hetero_machine.calibration())
        cp = critical_path_length(
            program.tasks,
            lambda t: min(pm.estimate(t, a) for a in ("cpu", "cuda")),
        )
        _, res = simulate(hetero_machine, program)
        assert res.makespan >= cp - 1e-6

    def test_serial_chain_has_no_parallel_speedup(self, hetero_machine, cpu_machine):
        program = make_chain_program(n=6, flops=1e8)
        _, res_many = simulate(hetero_machine, program)
        _, res_cpu = simulate(cpu_machine, program)
        # Chain length dominated by per-task time; more workers cannot help
        # beyond running each task on the fastest unit.
        assert res_many.makespan <= res_cpu.makespan

    def test_transfer_wait_recorded(self, hetero_machine):
        flow = TaskFlow()
        big = flow.data(64 * 2**20, label="big")  # 64 MiB
        flow.submit("init", [(big, AccessMode.W)], flops=1e6, implementations=("cpu",))
        flow.submit("gemm", [(big, AccessMode.R)], flops=1e6, implementations=("cuda",))
        program = flow.program()
        sim, res = simulate(hetero_machine, program)
        gpu_rec = [r for r in res.trace.task_records if r.type_name == "gemm"][0]
        assert gpu_rec.wait_time > 0  # had to fetch 64 MiB over PCIe
        assert res.bytes_transferred == 64 * 2**20

    def test_noise_changes_durations_but_not_validity(self, hetero_machine):
        program = make_fork_join_program(width=6)
        pm = AnalyticalPerfModel(hetero_machine.calibration(), noise_sigma=0.4)
        sim = Simulator(hetero_machine.platform(), Eager(), pm, seed=7)
        res = sim.run(program)
        check_schedule(program, res.trace, sim.platform.workers)


class TestPipeline:
    def test_pipeline_overlaps_transfers(self):
        """With lookahead, a GPU's next task's transfer overlaps the
        current execution, so total makespan shrinks. One GPU worker so
        the overlap cannot come from a sibling stream."""
        from repro.platform.machines import small_hetero

        machine = small_hetero(n_cpus=1, n_gpus=1, gpu_streams=1)
        flow = TaskFlow()
        handles = [flow.data(8 * 2**20, label=f"h{i}") for i in range(8)]
        for h in handles:
            flow.submit("init", [(h, AccessMode.W)], flops=1e3, implementations=("cpu",))
        for h in handles:
            flow.submit("gemm", [(h, AccessMode.R)], flops=5e9, implementations=("cuda",))
        program = flow.program()
        _, res_pipe = simulate(machine, program, pipeline=True)
        _, res_nopipe = simulate(machine, program, pipeline=False)
        assert res_pipe.makespan < res_nopipe.makespan

    def test_pipeline_preserves_feasibility(self, hetero_machine):
        program = make_fork_join_program(width=12)
        sim, res = simulate(hetero_machine, program, pipeline=True)
        check_schedule(program, res.trace, sim.platform.workers)


class _NullScheduler(Scheduler):
    """Never returns work: must trigger the deadlock diagnosis."""

    name = "null"

    def push(self, task: Task) -> None:
        pass

    def pop(self, worker: Worker) -> Task | None:
        return None


class _WrongArchScheduler(Eager):
    """Returns tasks to workers that cannot execute them."""

    name = "wrong-arch"

    def pop(self, worker: Worker) -> Task | None:
        task = self._queue.popleft() if self._queue else None
        return task


class _LossyHeapq:
    """heapq facade that loses TASK_COMPLETION events (a simulated engine
    bug): executions start but never finish, so the event queue drains."""

    def __getattr__(self, attr):
        return getattr(heapq, attr)

    def heappush(self, heap, item):
        if item[2] != TASK_COMPLETION:
            heapq.heappush(heap, item)


class TestErrorHandling:
    def test_null_scheduler_deadlocks(self, hetero_machine):
        program = make_chain_program(n=3)
        with pytest.raises(DeadlockError, match="stalled"):
            simulate(hetero_machine, program, scheduler=_NullScheduler())

    def test_stalled_deadlock_reports_scheduler_stats(self, hetero_machine):
        program = make_chain_program(n=3)
        with pytest.raises(DeadlockError, match=r"stalled.*scheduler stats:"):
            simulate(hetero_machine, program, scheduler=_NullScheduler())

    def test_drained_queue_deadlock_reports_scheduler_stats(
        self, hetero_machine, monkeypatch
    ):
        import repro.runtime.engine as engine_mod

        monkeypatch.setattr(engine_mod, "heapq", _LossyHeapq())
        program = make_chain_program(n=3)
        with pytest.raises(DeadlockError, match=r"drained.*stats:"):
            simulate(hetero_machine, program)

    def test_wrong_arch_assignment_rejected(self, hetero_machine):
        flow = TaskFlow()
        h = flow.data(8)
        flow.submit("t", [(h, AccessMode.W)], implementations=("cuda",))
        program = flow.program()
        with pytest.raises(SchedulingError, match="implementation"):
            # CPU worker (wid 0) requests first and receives the cuda task.
            simulate(hetero_machine, program, scheduler=_WrongArchScheduler())

    def test_unexecutable_program_rejected(self, cpu_machine):
        flow = TaskFlow()
        h = flow.data(8)
        flow.submit("t", [(h, AccessMode.W)], implementations=("cuda",))
        program = flow.program()
        with pytest.raises(SchedulingError, match="platform"):
            simulate(cpu_machine, program)


class TestAccounting:
    def test_idle_fractions_bounded(self, hetero_machine):
        program = make_fork_join_program(width=8)
        _, res = simulate(hetero_machine, program)
        for frac in res.idle_frac_by_arch.values():
            assert 0.0 <= frac <= 1.0

    def test_exec_time_by_arch_sums_to_busy_time(self, hetero_machine):
        program = make_fork_join_program(width=8)
        _, res = simulate(hetero_machine, program)
        total_exec = sum(r.exec_time for r in res.trace.task_records)
        assert sum(res.exec_time_by_arch.values()) == pytest.approx(total_exec)

    def test_gflops_property(self, hetero_machine):
        program = make_fork_join_program(width=4, flops=1e9)
        _, res = simulate(hetero_machine, program)
        expected = res.total_flops / (res.makespan * 1e-6) / 1e9
        assert res.gflops == pytest.approx(expected)

    def test_record_trace_off(self, hetero_machine):
        program = make_fork_join_program(width=4)
        _, res = simulate(hetero_machine, program, record_trace=False)
        assert res.trace is None
        assert res.makespan > 0


class _DoubleHandoutScheduler(Scheduler):
    """pop() never serves work, so every pop goes through the liveness
    rescue; force_pop() always returns the first task it ever saw —
    from the second rescue on, a task already handed out."""

    name = "double-handout"

    def __init__(self) -> None:
        self._tasks: list[Task] = []

    def push(self, task: Task) -> None:
        self._tasks.append(task)

    def pop(self, worker: Worker) -> Task | None:
        return None

    def force_pop(self, worker: Worker) -> Task | None:
        return self._tasks[0] if self._tasks else None


class TestLivenessRescue:
    def test_rescued_task_handed_out_twice_is_an_error(self, hetero_machine):
        # Silently dropping the non-READY task (the old behavior) would
        # let the run limp on to an unrelated DeadlockError; the engine
        # must instead name the scheduler contract violation.
        program = make_fork_join_program(width=4)
        with pytest.raises(SchedulingError, match="liveness-rescue"):
            simulate(hetero_machine, program, scheduler=_DoubleHandoutScheduler())
