"""Power subsystem: states, node caps, the ledger, engine integration.

Covers the DVFS state ladder and its validation, cap admission
(downgrades, delayed starts, the feasibility floor), per-worker energy
accounting with fail-stop horizon clamping, the ``PowerCapThrottled``
provenance event, and the hypothesis properties the accounting must
satisfy (busy + idle = live horizon; joules monotone in busy watts;
engine metering bit-identical to the post-hoc conversion).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.check.differential import fingerprint
from repro.extensions.energy import energy_of_result
from repro.obs.events import PowerCapThrottled
from repro.platform.machines import small_hetero
from repro.runtime.engine import Simulator
from repro.runtime.faults import FaultModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.power import (
    ArchPower,
    PowerLedger,
    PowerModel,
    PowerState,
    PowerStateModel,
)
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode
from repro.schedulers.registry import make_scheduler
from repro.utils.validation import ValidationError
from tests.conftest import make_fork_join_program


class TestPowerState:
    def test_defaults_are_nominal(self):
        s = PowerState("full")
        assert s.speed == 1.0 and s.busy_scale == 1.0 and s.runnable

    def test_sleep_is_not_runnable(self):
        assert not PowerState("sleep", speed=0.0).runnable

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "x", "speed": -0.1},
            {"name": "x", "speed": 1.5},
            {"name": "x", "busy_scale": float("nan")},
            {"name": "x", "idle_scale": float("inf")},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            PowerState(**kwargs)


class TestPowerStateModel:
    def test_default_ladder(self):
        model = PowerStateModel()
        assert [s.name for s in model.run_states] == ["full", "eco"]
        assert model.idle_state == "sleep"  # lowest idle_scale
        assert model.is_passive

    def test_caps_break_passivity(self):
        assert not PowerStateModel(node_cap_watts=100.0).is_passive

    def test_slow_fastest_state_breaks_passivity(self):
        model = PowerStateModel(states=(PowerState("eco", speed=0.6),))
        assert not model.is_passive

    def test_cap_of(self):
        assert PowerStateModel().cap_of(0) == float("inf")
        assert PowerStateModel(node_cap_watts=50.0).cap_of(3) == 50.0
        mapped = PowerStateModel(node_cap_watts={1: 30.0})
        assert mapped.cap_of(1) == 30.0
        assert mapped.cap_of(0) == float("inf")

    def test_metering_is_passive_single_state(self):
        model = PowerStateModel.metering()
        assert model.is_passive
        assert [s.name for s in model.states] == ["full"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"states": ()},
            {"states": (PowerState("a"), PowerState("a"))},
            {"states": (PowerState("sleep", speed=0.0),)},
            {"idle_state": "nope"},
            {"node_cap_watts": -1.0},
            {"node_cap_watts": {0: 0.0}},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            PowerStateModel(**kwargs)


class TestPowerLedger:
    def platform(self, n_cpus=2, n_gpus=1):
        return small_hetero(n_cpus=n_cpus, n_gpus=n_gpus).platform()

    def cpu_workers(self, platform):
        return platform.workers_of_arch("cpu")

    def test_uncapped_admits_fastest_immediately(self):
        plat = self.platform()
        led = PowerLedger(PowerStateModel(), plat)
        state, start = led.admit(plat.workers[0], 5.0)
        assert state.name == "full" and start == 5.0
        assert led.n_throttled == 0

    def test_cap_downgrades_to_eco(self):
        plat = self.platform()
        # cpu node: full draws 12 W; two fulls (24 W) exceed a 20 W cap,
        # but full + eco (12 + 5.4) fits.
        led = PowerLedger(PowerStateModel(node_cap_watts={0: 20.0}), plat)
        w0, w1 = self.cpu_workers(plat)[:2]
        s0, t0 = led.admit(w0, 0.0)
        led.book(w0, s0, t0, 100.0)
        assert s0.name == "full"
        s1, t1 = led.admit(w1, 0.0)
        assert s1.name == "eco" and t1 == 0.0
        assert led.n_throttled == 1
        assert led.throttle_delay_us == 0.0

    def test_cap_delays_when_nothing_fits(self):
        plat = self.platform()
        # Single-state ladder: no leaner state to fall back to, so the
        # second admission must wait for the first reservation's end.
        model = PowerStateModel(
            states=(PowerState("full"),), node_cap_watts={0: 12.0}
        )
        led = PowerLedger(model, plat)
        w0, w1 = self.cpu_workers(plat)[:2]
        s0, _ = led.admit(w0, 0.0)
        led.book(w0, s0, 0.0, 100.0)
        s1, t1 = led.admit(w1, 40.0)
        assert s1.name == "full" and t1 == 100.0
        assert led.n_throttled == 1
        assert led.throttle_delay_us == pytest.approx(60.0)

    def test_node_draw_excludes_unstarted_reservations(self):
        plat = self.platform()
        model = PowerStateModel(
            states=(PowerState("full"),), node_cap_watts={0: 12.0}
        )
        led = PowerLedger(model, plat)
        w0, w1 = self.cpu_workers(plat)[:2]
        led.book(w0, model.states[0], 0.0, 100.0)
        led.book(w1, model.states[0], 100.0, 200.0)  # delayed start
        assert led.node_draw(0, 50.0) == pytest.approx(12.0)
        assert led.node_draw(0, 150.0) == pytest.approx(12.0)
        assert led.node_draw(0, 250.0) == 0.0

    def test_charge_accrues_per_state(self):
        plat = self.platform()
        led = PowerLedger(PowerStateModel(), plat)
        w = self.cpu_workers(plat)[0]
        full = led.run_states[0]
        joules = led.charge(w, full, 1e6)  # 1 s busy at 12 W
        assert joules == pytest.approx(12.0)
        assert led.busy_us_by_state[w.wid] == {"full": 1e6}
        assert led.busy_us_total == 1e6

    def test_finalize_clamps_dead_worker_horizon(self):
        plat = self.platform()
        led = PowerLedger(PowerStateModel.metering(), plat)
        report = led.finalize(1000.0, {0: 200.0})
        by_wid = {we.wid: we for we in report.by_worker}
        assert by_wid[0].horizon_us == 200.0
        assert by_wid[0].idle_us == 200.0
        assert by_wid[1].horizon_us == 1000.0

    def test_infeasible_cap_rejected(self):
        plat = self.platform()
        # The cpu eco floor is 12 * 0.45 = 5.4 W; a 4 W cap can never
        # admit any execution.
        with pytest.raises(ValidationError, match="leanest"):
            PowerLedger(PowerStateModel(node_cap_watts={0: 4.0}), plat)

    def test_unknown_arch_profile_rejected(self):
        # A draw profile missing one of the platform's architectures
        # must fail at ledger construction, not mid-run.
        plat = self.platform()
        bare = PowerModel.__new__(PowerModel)
        bare._per_arch = {"cpu": ArchPower(12.0, 3.0)}
        with pytest.raises(KeyError, match="cuda"):
            PowerLedger(PowerStateModel(power=bare), plat)


class TestEnginePower:
    def run(self, program, machine=None, scheduler="multiprio", **cfg):
        machine = machine or small_hetero(n_cpus=4, n_gpus=1)
        sim = Simulator(
            machine.platform(),
            make_scheduler(scheduler),
            AnalyticalPerfModel(machine.calibration()),
            seed=0,
            record_trace=True,
            **cfg,
        )
        return sim.run(program), sim

    def test_metering_is_bit_identical(self):
        program = make_fork_join_program(width=8, flops=5e8)
        plain, _ = self.run(program)
        metered, _ = self.run(program, power=PowerStateModel.metering())
        assert fingerprint(plain) == fingerprint(metered)
        assert plain.energy is None
        assert metered.energy is not None and metered.energy.total_j > 0

    def test_metering_matches_energy_of_result_bitwise(self):
        program = make_fork_join_program(width=8, flops=5e8)
        res, sim = self.run(program, power=PowerStateModel.metering())
        assert res.energy.total_j == energy_of_result(res, sim.platform)

    def test_eco_only_ladder_slows_execution(self):
        program = make_fork_join_program(width=6, flops=5e8)
        base, _ = self.run(program)
        eco, _ = self.run(
            program,
            power=PowerStateModel(
                states=(PowerState("eco", speed=0.5, busy_scale=0.4),)
            ),
        )
        # Every execution takes 2x as long at half speed.
        assert eco.makespan > base.makespan * 1.5

    def test_cap_emits_throttle_events_and_stays_under_cap(self):
        program = make_fork_join_program(width=24, flops=5e8)
        cap = 20.0
        res, _ = self.run(
            program, scheduler="eager",
            power=PowerStateModel(node_cap_watts={0: cap}),
            record_level="tasks",
            check_invariants=True,
        )
        throttles = [
            e for e in res.events if isinstance(e, PowerCapThrottled)
        ]
        assert throttles
        for ev in throttles:
            assert ev.node == 0
            assert ev.cap_watts == cap
            assert ev.state in ("full", "eco")
            assert ev.delay_us >= 0.0
        assert res.energy.n_throttled == len(throttles)
        assert res.rt_stats["power_n_throttled"] == len(throttles)

    def test_dead_worker_stops_drawing_idle(self):
        """Satellite regression: a fail-stop casualty must not draw
        idle watts between its death and the end of the run."""
        program = make_fork_join_program(width=16, flops=5e8)
        alive, sim_a = self.run(program, power=PowerStateModel.metering())
        kill_at = alive.makespan * 0.25
        dead, sim_d = self.run(
            program, power=PowerStateModel.metering(),
            fault_model=FaultModel(worker_kills={0: kill_at}),
        )
        by_wid = {we.wid: we for we in dead.energy.by_worker}
        assert by_wid[0].horizon_us == pytest.approx(
            min(dead.makespan, kill_at)
        )
        # The engine's report and the post-hoc conversion must agree on
        # the clamp (both charge the casualty only up to its death).
        assert dead.energy.total_j == energy_of_result(dead, sim_d.platform)

    def test_power_stats_reported(self):
        program = make_fork_join_program(width=6, flops=5e8)
        res, _ = self.run(program, power=PowerStateModel())
        stats = res.rt_stats
        assert stats["power_n_admissions"] == len(program.tasks)
        assert stats["power_busy_us"] > 0.0
        assert res.busy_us_by_worker
        assert sum(res.busy_us_by_worker) == pytest.approx(
            stats["power_busy_us"]
        )


# -- hypothesis properties ---------------------------------------------------

MODES = [AccessMode.R, AccessMode.W, AccessMode.RW]
IMPLS = [("cpu",), ("cuda",), ("cpu", "cuda")]

submission = st.tuples(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 2)),
        min_size=1,
        max_size=3,
        unique_by=lambda t: t[0],
    ),
    st.sampled_from(IMPLS),
    st.floats(min_value=1e6, max_value=5e8),
)

programs = st.lists(submission, min_size=1, max_size=20)


def build_program(submissions):
    flow = TaskFlow("random")
    handles = [flow.data(1024 * (i + 1), label=f"h{i}") for i in range(6)]
    for accesses, impls, flops in submissions:
        flow.submit(
            "kernel",
            [(handles[h], MODES[m]) for h, m in accesses],
            flops=flops,
            implementations=impls,
        )
    return flow.program()


def _metered_run(submissions, power=None):
    machine = small_hetero(n_cpus=2, n_gpus=1)
    sim = Simulator(
        machine.platform(),
        make_scheduler("multiprio"),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        power=PowerStateModel.metering(power),
    )
    return sim.run(build_program(submissions)), sim


@given(programs)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_busy_plus_idle_covers_each_live_horizon(submissions):
    """Per worker: busy + idle microseconds equal the live horizon, and
    the per-arch rollup sums its workers exactly."""
    res, sim = _metered_run(submissions)
    by_arch_busy: dict[str, float] = {}
    for we in res.energy.by_worker:
        assert we.busy_us + we.idle_us == pytest.approx(we.horizon_us)
        assert we.busy_us <= we.horizon_us + 1e-6
        by_arch_busy[we.arch] = by_arch_busy.get(we.arch, 0.0) + we.busy_us
    for arch, entry in res.energy.by_arch.items():
        assert entry["busy_us"] == pytest.approx(by_arch_busy.get(arch, 0.0))
    # Joules are additive across workers.
    assert res.energy.total_j == pytest.approx(
        sum(we.joules for we in res.energy.by_worker)
    )


@given(programs, st.floats(min_value=1.1, max_value=8.0))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_total_joules_monotone_in_busy_watts(submissions, factor):
    """Scaling every busy draw up (idle fixed) can only cost joules."""
    base, _ = _metered_run(submissions)
    hotter = PowerModel({
        arch: ArchPower(profile.busy_watts * factor, profile.idle_watts)
        for arch, profile in PowerModel.DEFAULTS.items()
    })
    hot, _ = _metered_run(submissions, power=hotter)
    assert hot.makespan == base.makespan  # metering never moves the run
    assert hot.energy.total_j >= base.energy.total_j - 1e-12


@given(programs)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_metering_matches_post_hoc_conversion_bitwise(submissions):
    """The engine's joule total equals energy_of_result bit for bit."""
    res, sim = _metered_run(submissions)
    assert res.energy.total_j == energy_of_result(res, sim.platform)
