"""GPU memory capacity and LRU replica eviction tests."""

import pytest

from repro.runtime.data import DataHandle
from repro.runtime.memory import Link, MemoryNode, TransferEngine
from repro.utils.validation import ValidationError


def bounded_engine(capacity=1000):
    nodes = [
        MemoryNode(0, "ram", "ram", "cpu"),
        MemoryNode(1, "gpu0", "gpu", "cuda", capacity=capacity),
    ]
    links = [Link(0, 1, 1000.0, 1.0), Link(1, 0, 1000.0, 1.0)]
    return TransferEngine(nodes, links)


class TestCapacityAccounting:
    def test_usage_tracks_fetches(self):
        eng = bounded_engine(1000)
        h = DataHandle(0, 400, home_node=0)
        eng.fetch(h, 1, now=0.0)
        assert eng.usage(1) == 400
        assert eng.usage(0) == 0  # unbounded nodes are not tracked

    def test_invalidation_releases_usage(self):
        eng = bounded_engine(1000)
        h = DataHandle(0, 400, home_node=0)
        eng.fetch(h, 1, now=0.0)
        eng.invalidate_others(h, keep=0, now=1.0)
        assert eng.usage(1) == 0

    def test_write_target_accounted(self):
        eng = bounded_engine(1000)
        h = DataHandle(0, 300, home_node=0)
        eng.invalidate_others(h, keep=1, now=0.0)
        assert eng.usage(1) == 300


class TestLRUEviction:
    def test_lru_replica_evicted_under_pressure(self):
        eng = bounded_engine(1000)
        old = DataHandle(0, 600, home_node=0)
        new1 = DataHandle(1, 300, home_node=0)
        new2 = DataHandle(2, 300, home_node=0)
        eng.fetch(old, 1, now=0.0)
        eng.fetch(new1, 1, now=10.0)
        eng.fetch(new2, 1, now=2000.0)  # needs room: old is LRU
        assert not old.is_valid_on(1)
        assert old.is_valid_on(0)  # the RAM copy survives
        assert new1.is_valid_on(1) and new2.is_valid_on(1)
        assert eng.n_evictions == 1
        assert eng.usage(1) == 600

    def test_recently_touched_survives(self):
        eng = bounded_engine(1000)
        a = DataHandle(0, 500, home_node=0)
        b = DataHandle(1, 400, home_node=0)
        eng.fetch(a, 1, now=0.0)
        eng.fetch(b, 1, now=10.0)
        eng.touch(a, 1, now=2000.0)  # refresh a: b becomes LRU
        c = DataHandle(2, 500, home_node=0)
        eng.fetch(c, 1, now=3000.0)
        assert a.is_valid_on(1)
        assert not b.is_valid_on(1)

    def test_pinned_replica_never_evicted(self):
        eng = bounded_engine(1000)
        pinned = DataHandle(0, 600, home_node=0)
        eng.fetch(pinned, 1, now=0.0)
        eng.pin(pinned, 1)
        other = DataHandle(1, 600, home_node=0)
        eng.fetch(other, 1, now=2000.0)
        assert pinned.is_valid_on(1)
        assert eng.n_overcommits == 1  # could not make room
        eng.unpin(pinned, 1)
        third = DataHandle(2, 600, home_node=0)
        eng.fetch(third, 1, now=4000.0)
        assert not pinned.is_valid_on(1)

    def test_sole_copy_never_evicted(self):
        eng = bounded_engine(1000)
        only = DataHandle(0, 600, home_node=1)  # lives on the GPU only
        eng._account_insert(only, 1, 0.0)
        other = DataHandle(1, 600, home_node=0)
        eng.fetch(other, 1, now=100.0)
        assert only.is_valid_on(1)
        assert eng.n_overcommits == 1

    def test_reset_clears_residency(self):
        eng = bounded_engine(1000)
        h = DataHandle(0, 500, home_node=0)
        eng.fetch(h, 1, now=0.0)
        eng.reset_runtime_state()
        assert eng.usage(1) == 0
        assert eng.n_evictions == 0


class TestEndToEnd:
    def test_small_gpu_forces_retransfers(self):
        """With a GPU smaller than the working set, data ping-pongs and
        total traffic grows vs an unbounded GPU."""
        from repro.platform.machines import MachineModel
        from repro.runtime.engine import Simulator
        from repro.runtime.perfmodel import AnalyticalPerfModel
        from repro.runtime.platform_config import (
            LinkSpec,
            MachineSpec,
            MemoryNodeSpec,
        )
        from repro.runtime.stf import TaskFlow
        from repro.runtime.task import AccessMode
        from repro.schedulers.registry import make_scheduler
        from repro.platform.calibration import default_calibration

        def machine(capacity):
            spec = MachineSpec(
                "tiny",
                nodes=(
                    MemoryNodeSpec("ram", "ram", "cpu", 1),
                    MemoryNodeSpec("gpu0", "gpu", "cuda", 1, capacity=capacity),
                ),
                links=(LinkSpec("ram", "gpu0", 12.0), LinkSpec("gpu0", "ram", 12.0)),
            )
            return MachineModel(spec, 1.0, 1.0)

        def build():
            flow = TaskFlow()
            handles = [flow.data(2 * 2**20) for _ in range(8)]  # 16 MiB set
            for h in handles:
                flow.submit("init", [(h, AccessMode.W)], flops=1.0,
                            implementations=("cpu",))
            barrier = None
            for _ in range(3):  # three GPU sweeps over the whole set
                for h in handles:
                    accesses = [(h, AccessMode.R)]
                    if barrier is not None:
                        accesses.append((barrier, AccessMode.R))
                    flow.submit("gemm", accesses, flops=5e8,
                                implementations=("cuda",))
                # Barrier between sweeps: forces the full-set reuse
                # distance so a small GPU memory must churn replicas.
                barrier = flow.data(8)
                sync = [(h, AccessMode.R) for h in handles]
                sync.append((barrier, AccessMode.W))
                flow.submit("sync", sync, flops=1.0, implementations=("cpu",))
            return flow.program()

        def run(capacity):
            m = machine(capacity)
            sim = Simulator(
                m.platform(),
                make_scheduler("eager"),
                AnalyticalPerfModel(default_calibration()),
                seed=0,
            )
            return sim.run(build())

        unbounded = run(None)
        tight = run(6 * 2**20)  # holds only 3 of 8 handles
        assert tight.bytes_transferred > unbounded.bytes_transferred
        assert tight.makespan >= unbounded.makespan

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            MemoryNode(0, "x", "gpu", "cuda", capacity=0)
