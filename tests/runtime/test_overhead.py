"""Charged scheduler overheads: model validation, ledger arithmetic,
and the engine-level charging semantics."""

from __future__ import annotations

import pytest

from repro.api import SimConfig, SimSpec
from repro.apps.dense import cholesky_program
from repro.check.differential import fingerprint
from repro.runtime.overhead import OverheadLedger, SchedOverheadModel
from repro.utils.validation import ValidationError


class TestModelValidation:
    @pytest.mark.parametrize("field", ["push_us", "pop_us", "flush_us"])
    @pytest.mark.parametrize("bad", [-1.0, float("inf"), float("nan")])
    def test_bad_costs_rejected(self, field, bad):
        with pytest.raises(ValidationError, match=field):
            SchedOverheadModel(**{field: bad})

    def test_bad_batch_task_us_rejected(self):
        with pytest.raises(ValidationError, match="batch_task_us"):
            SchedOverheadModel(batch_task_us=-0.5)

    def test_batch_task_us_defaults_to_push_us(self):
        # Batching then costs exactly what per-event pushes would; only
        # an explicit discount makes coalescing win simulated time.
        assert SchedOverheadModel(push_us=3.0).batch_task_us == 3.0
        assert SchedOverheadModel(push_us=3.0, batch_task_us=0.5).batch_task_us == 0.5

    def test_is_free(self):
        assert SchedOverheadModel().is_free
        assert not SchedOverheadModel(pop_us=0.1).is_free
        # A zero push with a nonzero batch discount is still not free.
        assert not SchedOverheadModel(batch_task_us=1.0).is_free

    def test_calibrated_arithmetic(self):
        # 2 s over 1M decisions = 2 µs per decision, batch 4x cheaper.
        m = SchedOverheadModel.calibrated(2.0, 1_000_000, batch_speedup=4.0)
        assert m.push_us == pytest.approx(2.0)
        assert m.pop_us == pytest.approx(2.0)
        assert m.flush_us == pytest.approx(2.0)
        assert m.batch_task_us == pytest.approx(0.5)

    @pytest.mark.parametrize("kwargs", [
        dict(sched_core_s=-1.0, n_decisions=10),
        dict(sched_core_s=1.0, n_decisions=0),
        dict(sched_core_s=1.0, n_decisions=10, batch_speedup=0.5),
    ])
    def test_calibrated_validation(self, kwargs):
        with pytest.raises(ValidationError):
            SchedOverheadModel.calibrated(**kwargs)


class TestLedger:
    def test_charges_accumulate_and_serialize(self):
        led = OverheadLedger(SchedOverheadModel(push_us=2.0, pop_us=1.0))
        # Two pushes at the same instant queue behind one scheduler core.
        assert led.push(10.0) == 12.0
        assert led.push(10.0) == 14.0
        # A later event starts after the core frees.
        assert led.pop(13.0) == 15.0
        # An event past the backlog starts at its own clock.
        assert led.pop(100.0) == 101.0
        assert led.charged_us == pytest.approx(2.0 + 2.0 + 1.0 + 1.0)
        assert (led.n_push, led.n_pop, led.n_flush) == (2, 2, 0)

    def test_flush_pays_fixed_plus_per_task(self):
        led = OverheadLedger(
            SchedOverheadModel(flush_us=10.0, batch_task_us=0.5)
        )
        assert led.flush(0.0, 8) == pytest.approx(10.0 + 8 * 0.5)
        assert led.n_flush == 1
        assert led.n_flush_tasks == 8

    def test_stats_keys(self):
        led = OverheadLedger(SchedOverheadModel(push_us=1.0))
        led.push(0.0)
        stats = led.stats()
        assert stats["overhead_charged_us"] == 1.0
        assert stats["overhead_n_push"] == 1.0
        assert stats["overhead_n_pop"] == 0.0


class TestEngineCharging:
    def run(self, overhead=None, **cfg):
        spec = SimSpec(
            "small-hetero", "multiprio",
            config=SimConfig(overhead=overhead, record_trace=True, **cfg),
        )
        return spec.run(cholesky_program(4, 384))

    def test_zero_cost_model_is_bit_identical(self):
        plain = self.run()
        gated = self.run(overhead=SchedOverheadModel())
        assert fingerprint(gated) == fingerprint(plain)

    def test_charged_costs_inflate_makespan(self):
        plain = self.run()
        charged = self.run(
            overhead=SchedOverheadModel(push_us=20.0, pop_us=20.0)
        )
        assert charged.makespan > plain.makespan

    def test_rt_stats_exposed_and_conserved(self):
        model = SchedOverheadModel(push_us=2.0, pop_us=1.0)
        res = self.run(overhead=model)
        stats = res.rt_stats
        assert stats is not None
        assert stats["overhead_n_push"] > 0
        assert stats["overhead_n_pop"] > 0
        assert stats["overhead_charged_us"] == pytest.approx(
            2.0 * stats["overhead_n_push"] + 1.0 * stats["overhead_n_pop"]
        )

    def test_no_model_means_no_rt_stats(self):
        assert self.run().rt_stats is None

    def test_batched_flushes_charge_flush_costs(self):
        model = SchedOverheadModel(push_us=2.0, flush_us=5.0,
                                   batch_task_us=0.5)
        res = self.run(overhead=model, batch_step=50.0)
        stats = res.rt_stats
        assert stats is not None
        assert stats["overhead_n_flush"] > 0
        assert stats["overhead_n_push"] == 0  # batching replaces pushes
        assert stats["overhead_n_flush_tasks"] == res.n_tasks

    def test_charged_run_validates_under_checker(self):
        res = self.run(
            overhead=SchedOverheadModel(push_us=2.0, pop_us=1.0),
            check_invariants=True,
        )
        assert res.makespan > 0
