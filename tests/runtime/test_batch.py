"""Batched hot path: bit-identity, provenance, gating, liveness."""

import pytest

from repro.api import SimConfig, SimSpec
from repro.apps.dense import cholesky_program, lu_program
from repro.check.differential import fingerprint
from repro.control.plane import default_overload_config
from repro.experiments.overload import (
    estimate_job_cost_us,
    overload_workload,
    sustainable_rate_jobs_per_s,
)
from repro.platform import MACHINES
from repro.runtime.engine import SchedulingError
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.engine import Simulator
from repro.schedulers import make_scheduler


def run(scheduler="multiprio", batch_step=None, drain=True, app=cholesky_program,
        n=6, **cfg_kw):
    spec = SimSpec(
        "small-hetero", scheduler,
        config=SimConfig(record_trace=True, check_invariants=True,
                         batch_step=batch_step, batch_drain_on_idle=drain,
                         **cfg_kw),
    )
    return spec.run(app(n, 384))


class TestBitIdentity:
    @pytest.mark.parametrize("scheduler", ["multiprio", "eager", "dmdas",
                                           "multiqueue"])
    @pytest.mark.parametrize("step", [1.0, 250.0, 1e9])
    def test_drain_on_idle_is_bit_identical(self, scheduler, step):
        """Any batch step: drain-on-idle flushes before every pop, so the
        scheduler sees per-event queue contents at each decision."""
        base = run(scheduler)
        batched = run(scheduler, batch_step=step)
        assert fingerprint(base) == fingerprint(batched)

    def test_windowed_run_is_bit_identical(self):
        base = run(submission_window=16)
        batched = run(batch_step=100.0, submission_window=16)
        assert fingerprint(base) == fingerprint(batched)

    def test_relaxed_multiprio_is_bit_identical(self):
        base = run(sched_params={"relaxed": 4})
        batched = run(batch_step=500.0, sched_params={"relaxed": 4})
        assert fingerprint(base) == fingerprint(batched)


class TestNoDrain:
    def test_fixed_step_completes_every_task(self):
        res = run(batch_step=200.0, drain=False, app=lu_program)
        assert len(res.trace.task_records) == len(lu_program(6, 384).tasks)

    def test_giant_step_completes_via_flush_rescue(self):
        """One bin holding the whole graph must still finish the run."""
        res = run(batch_step=1e9, drain=False)
        assert len(res.trace.task_records) == len(cholesky_program(6, 384).tasks)


class TestBatchStats:
    def test_absent_on_per_event_path(self):
        assert run().batch_stats is None

    def test_counts_every_buffered_reveal(self):
        res = run(batch_step=100.0)
        stats = res.batch_stats
        n_tasks = len(cholesky_program(6, 384).tasks)
        assert stats is not None
        assert stats["n_batched"] == n_tasks
        assert 1 <= stats["n_flushes"] <= n_tasks
        assert stats["max_batch"] >= 1
        assert stats["mean_batch"] == pytest.approx(
            stats["n_batched"] / stats["n_flushes"]
        )

    def test_large_step_actually_bins(self):
        """The equivalence must not hold vacuously: with a generous step
        some flush carries more than one task."""
        res = run(batch_step=1e9)
        assert res.batch_stats["max_batch"] > 1


class TestProvenance:
    def test_batch_scheduled_events_emitted(self):
        res = run(batch_step=100.0, record_level="all")
        flushes = [e for e in res.events if e.kind == "batch_scheduled"]
        assert flushes
        assert sum(e.n for e in flushes) == res.batch_stats["n_batched"]
        assert {e.trigger for e in flushes} <= {"step", "drain", "rescue"}
        assert all(e.n >= 1 for e in flushes)

    def test_no_events_without_batching(self):
        res = run(record_level="all")
        assert not [e for e in res.events if e.kind == "batch_scheduled"]


class TestValidationAndGating:
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_nonpositive_step(self, bad):
        mach = MACHINES["small-hetero"]()
        with pytest.raises(SchedulingError):
            Simulator(
                mach.platform(),
                make_scheduler("eager"),
                AnalyticalPerfModel(mach.calibration()),
                batch_step=bad,
            )

    def test_control_eviction_with_buffered_tasks(self):
        """Overloaded controlled stream under batching: the engine must
        retract its own buffered tasks on eviction, checker-clean, and
        conserve the job ledger."""
        machine = "small-hetero"
        job_cost = estimate_job_cost_us(machine)
        rate = 4.0 * sustainable_rate_jobs_per_s(machine, job_cost)
        stream = overload_workload(
            rate_jobs_per_s=rate, n_tenants=6, n_jobs=24, seed=3
        )
        n_workers = len(MACHINES[machine]().platform().workers)
        control = default_overload_config(
            tenants=stream.tenants,
            sustainable_work_per_s=float(n_workers),
            job_cost_us=job_cost,
            max_inflight_jobs=2.0 * n_workers,
        )
        spec = SimSpec(
            machine, "multiprio", control=control, isolated_baseline=False,
            config=SimConfig(check_invariants=True, batch_step=300.0),
        )
        sres = spec.run_stream(stream)
        ledger = sres.control
        assert ledger.n_completed + ledger.n_rejected + ledger.n_evicted \
            == ledger.n_arrived == 24
        assert ledger.n_rejected + ledger.n_evicted > 0
