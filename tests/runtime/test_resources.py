"""Resource protocol: ledger arbitration, engine-enforced exclusion,
priority-inversion provenance."""

from __future__ import annotations

import pytest

from repro.api import SimConfig, SimSpec
from repro.check.differential import fingerprint
from repro.obs.events import PriorityInversion
from repro.runtime.resources import ResourceLedger, ResourceProtocol
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, Task
from repro.utils.validation import ValidationError


def contended_program(width: int = 6, resource: str = "dma"):
    """``width`` independent tasks all holding the same resource."""
    tf = TaskFlow("contended")
    for i in range(width):
        h = tf.data(4096, label=f"d{i}")
        tf.submit(
            "gemm", [(h, AccessMode.W)], flops=5e7,
            implementations=("cpu",), resources=(resource,),
        )
    return tf.program()


class TestProtocolValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValidationError, match="mode"):
            ResourceProtocol(mode="spinlock")

    @pytest.mark.parametrize("mode", ["lock", "ceiling"])
    def test_valid_modes(self, mode):
        assert ResourceProtocol(mode=mode).mode == mode


class TestLedger:
    def task(self, tid, resources=("r",), priority=0):
        return Task(tid, "t", resources=resources, priority=priority)

    def test_gate_waits_for_busy_resource(self):
        led = ResourceLedger(ResourceProtocol(), [])
        holder = self.task(0)
        led.book(holder, 0.0, 50.0)
        gated, inversions = led.gate(self.task(1), 10.0)
        assert gated == 50.0
        assert inversions == []  # equal priority: a wait, not an inversion
        assert led.n_blocked == 1
        assert led.blocked_us == pytest.approx(40.0)

    def test_free_resource_starts_immediately(self):
        led = ResourceLedger(ResourceProtocol(), [])
        gated, inversions = led.gate(self.task(0), 5.0)
        assert gated == 5.0 and inversions == []
        assert led.n_blocked == 0

    def test_inversion_reported_behind_lower_priority_holder(self):
        led = ResourceLedger(ResourceProtocol(), [])
        led.book(self.task(0, priority=1), 0.0, 30.0)
        gated, inversions = led.gate(self.task(1, priority=5), 10.0)
        assert gated == 30.0
        assert inversions == [("r", 0, 1, 20.0)]
        assert led.n_inversions == 1

    def test_ceiling_blocks_on_other_held_resource(self):
        # "a" is held by a low-prio task but has a high ceiling (a
        # high-prio task names it): a mid-prio task wanting only "b"
        # must still wait — the ceiling's avoidance blocking.
        tasks = [
            self.task(0, resources=("a",), priority=1),
            self.task(1, resources=("a",), priority=9),
            self.task(2, resources=("b",), priority=5),
        ]
        led = ResourceLedger(ResourceProtocol(mode="ceiling"), tasks)
        assert led.ceilings == {"a": 9, "b": 5}
        led.book(tasks[0], 0.0, 40.0)
        gated, inversions = led.gate(tasks[2], 10.0)
        assert gated == 40.0
        assert inversions == [("a", 0, 1, 30.0)]

    def test_lock_mode_ignores_unrelated_resources(self):
        led = ResourceLedger(ResourceProtocol(), [])
        led.book(self.task(0, resources=("a",)), 0.0, 40.0)
        gated, _ = led.gate(self.task(1, resources=("b",)), 10.0)
        assert gated == 10.0

    def test_stats_keys(self):
        led = ResourceLedger(ResourceProtocol(), [])
        led.book(self.task(0), 0.0, 10.0)
        led.gate(self.task(1), 0.0)
        stats = led.stats()
        assert stats["resource_n_grants"] == 1.0
        assert stats["resource_n_blocked"] == 1.0
        assert stats["resource_blocked_us"] == 10.0


class TestEngineExclusion:
    def run(self, program, resources=ResourceProtocol(), **cfg):
        spec = SimSpec(
            "small-hetero", "multiprio",
            config=SimConfig(resources=resources, record_trace=True, **cfg),
        )
        return spec.run(program)

    def test_shared_resource_serializes_execution(self):
        res = self.run(contended_program(width=6))
        spans = sorted(
            (r.start, r.end) for r in res.trace.task_records
        )
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            assert start >= prev_end - 1e-9
        stats = res.rt_stats
        assert stats is not None
        assert stats["resource_n_grants"] == 6.0
        assert stats["resource_n_blocked"] > 0

    def test_disjoint_resources_run_concurrently(self):
        tf = TaskFlow("disjoint")
        for i in range(6):
            h = tf.data(4096, label=f"d{i}")
            tf.submit(
                "gemm", [(h, AccessMode.W)], flops=5e7,
                implementations=("cpu",), resources=(f"r{i}",),
            )
        res = self.run(tf.program())
        spans = sorted((r.start, r.end) for r in res.trace.task_records)
        overlaps = sum(
            1 for (s1, e1), (s2, _) in zip(spans, spans[1:]) if s2 < e1
        )
        assert overlaps > 0  # per-task resources impose no serialization

    def test_idle_protocol_is_bit_identical(self):
        # No task names a resource: the gate must not perturb anything.
        from repro.apps.dense import cholesky_program

        program = cholesky_program(4, 384)
        plain = SimSpec(
            "small-hetero", "multiprio", config=SimConfig(record_trace=True)
        ).run(program)
        gated = self.run(program)
        assert fingerprint(gated) == fingerprint(plain)

    def test_priority_inversion_events_emitted(self):
        # A long low-priority holder grabs the lock first; high-priority
        # contenders then queue behind it.
        tf = TaskFlow("inv")
        h0 = tf.data(4096, label="d0")
        tf.submit("gemm", [(h0, AccessMode.W)], flops=5e8,
                  implementations=("cpu",), resources=("lock",),
                  priority=0)
        for i in range(4):
            h = tf.data(4096, label=f"d{i + 1}")
            tf.submit("gemm", [(h, AccessMode.W)], flops=5e7,
                      implementations=("cpu",), resources=("lock",),
                      priority=10)
        res = self.run(tf.program(), record_level="tasks")
        inversions = [
            e for e in res.events if isinstance(e, PriorityInversion)
        ]
        assert inversions
        for ev in inversions:
            assert ev.blocked_prio > ev.holder_prio
            assert ev.wait_us > 0.0
        assert res.rt_stats["resource_n_inversions"] == len(inversions)

    @pytest.mark.parametrize("mode", ["lock", "ceiling"])
    def test_contended_run_validates_under_checker(self, mode):
        res = self.run(
            contended_program(width=5),
            resources=ResourceProtocol(mode=mode),
            check_invariants=True,
        )
        assert res.makespan > 0
