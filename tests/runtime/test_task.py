"""Task and access-mode unit tests."""

import pytest

from repro.runtime.data import DataHandle
from repro.runtime.task import AccessMode, Task, TaskState


class TestAccessMode:
    @pytest.mark.parametrize(
        "mode,is_read,is_write",
        [
            (AccessMode.R, True, False),
            (AccessMode.W, False, True),
            (AccessMode.RW, True, True),
            (AccessMode.COMMUTE, True, True),
        ],
    )
    def test_read_write_flags(self, mode, is_read, is_write):
        assert mode.is_read is is_read
        assert mode.is_write is is_write


class TestTask:
    def test_requires_implementation(self):
        with pytest.raises(ValueError):
            Task(0, "t", implementations=())

    def test_can_exec(self):
        t = Task(0, "t", implementations=("cpu", "cuda"))
        assert t.can_exec("cpu") and t.can_exec("cuda")
        assert not t.can_exec("fpga")

    def test_name(self):
        assert Task(7, "gemm").name == "gemm#7"

    def test_handles_filtering(self):
        h1, h2, h3 = (DataHandle(i, 10) for i in range(3))
        t = Task(0, "t", [(h1, AccessMode.R), (h2, AccessMode.W), (h3, AccessMode.RW)])
        assert t.handles() == [h1, h2, h3]
        assert t.handles(written=True) == [h2, h3]
        assert t.handles(written=False) == [h1, h3]

    def test_footprint(self):
        h1, h2 = DataHandle(0, 100), DataHandle(1, 50)
        t = Task(0, "t", [(h1, AccessMode.R), (h2, AccessMode.W)])
        assert t.footprint_bytes() == 150

    def test_reset_runtime_state(self):
        t = Task(0, "t")
        pred = Task(1, "p")
        t.preds.append(pred)
        t.state = TaskState.DONE
        t.sched["x"] = 1
        t.reset_runtime_state()
        assert t.state is TaskState.SUBMITTED
        assert t.n_unfinished_preds == 1
        assert t.sched == {}

    def test_negative_handle_size_rejected(self):
        with pytest.raises(ValueError):
            DataHandle(0, -1)

    def test_handle_defaults(self):
        h = DataHandle(3, 10)
        assert h.label == "d3"
        assert h.valid_nodes == {0}
        assert h.is_valid_on(0) and not h.is_valid_on(1)
