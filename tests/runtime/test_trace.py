"""Trace tooling tests: records, idle accounting, Gantt, critical path."""

import pytest

from repro.runtime.task import Task
from repro.runtime.trace import Trace
from repro.runtime.worker import Worker


def make_workers():
    return [Worker(0, "cpu", 0, "cpu0"), Worker(1, "cuda", 1, "gpu0")]


def make_task(tid, preds=()):
    task = Task(tid, "k")
    for p in preds:
        task.preds.append(p)
        p.succs.append(task)
    return task


class TestAccounting:
    def test_makespan_and_busy(self):
        workers = make_workers()
        trace = Trace(workers)
        t0, t1 = make_task(0), make_task(1)
        trace.record_task(t0, workers[0], 0.0, 0.0, 10.0)
        trace.record_task(t1, workers[1], 0.0, 5.0, 20.0)
        assert trace.makespan() == 20.0
        assert trace.busy_time(0) == 10.0
        assert trace.busy_time(1) == 15.0
        assert trace.wait_time(1) == 5.0

    def test_idle_fraction(self):
        workers = make_workers()
        trace = Trace(workers)
        trace.record_task(make_task(0), workers[0], 0.0, 0.0, 5.0)
        trace.record_task(make_task(1), workers[1], 0.0, 0.0, 20.0)
        assert trace.idle_fraction(0) == pytest.approx(0.75)
        assert trace.idle_fraction(1) == pytest.approx(0.0)

    def test_idle_fraction_by_arch(self):
        workers = make_workers()
        trace = Trace(workers)
        trace.record_task(make_task(0), workers[1], 0.0, 0.0, 10.0)
        assert trace.idle_fraction_by_arch("cpu") == pytest.approx(1.0)
        assert trace.idle_fraction_by_arch("cuda") == pytest.approx(0.0)
        assert trace.idle_fraction_by_arch("tpu") == 0.0

    def test_empty_trace(self):
        trace = Trace(make_workers())
        assert trace.makespan() == 0.0
        assert trace.idle_fraction(0) == 0.0
        assert trace.gantt_ascii() == "(empty trace)"

    def test_per_worker_summary(self):
        workers = make_workers()
        trace = Trace(workers)
        trace.record_task(make_task(0), workers[0], 0.0, 1.0, 2.0)
        rows = trace.per_worker_summary()
        assert len(rows) == 2
        assert rows[0]["n_tasks"] == 1
        assert rows[1]["n_tasks"] == 0


class TestPracticalCriticalPath:
    def test_chain_through_dependencies(self):
        workers = make_workers()
        trace = Trace(workers)
        a = make_task(0)
        b = make_task(1, preds=[a])
        c = make_task(2, preds=[b])
        trace.record_task(a, workers[0], 0.0, 0.0, 5.0)
        trace.record_task(b, workers[1], 5.0, 5.0, 9.0)
        trace.record_task(c, workers[0], 9.0, 9.0, 15.0)
        chain = trace.practical_critical_path([a, b, c])
        assert [r.tid for r in chain] == [0, 1, 2]

    def test_worker_occupancy_blocker(self):
        """A task delayed by its worker's previous task, not by a DAG
        predecessor, must chain through the occupying task."""
        workers = make_workers()
        trace = Trace(workers)
        a = make_task(0)
        b = make_task(1)  # independent of a
        trace.record_task(a, workers[0], 0.0, 0.0, 8.0)
        trace.record_task(b, workers[0], 8.0, 8.0, 10.0)
        chain = trace.practical_critical_path([a, b])
        assert [r.tid for r in chain] == [0, 1]


class TestGantt:
    def test_gantt_contains_worker_rows(self):
        workers = make_workers()
        trace = Trace(workers)
        trace.record_task(make_task(0), workers[0], 0.0, 0.0, 10.0)
        art = trace.gantt_ascii(width=20)
        assert "cpu0" in art and "gpu0" in art
        assert "K" in art  # task type letter

    def test_gantt_shows_wait_as_tilde(self):
        workers = make_workers()
        trace = Trace(workers)
        trace.record_task(make_task(0), workers[0], 0.0, 5.0, 10.0)
        art = trace.gantt_ascii(width=20)
        assert "~" in art

    def test_gantt_no_workers(self):
        assert Trace([]).gantt_ascii() == "(empty trace)"

    def test_gantt_zero_span_with_records(self):
        workers = make_workers()
        trace = Trace(workers)
        trace.record_task(make_task(0), workers[0], 0.0, 0.0, 0.0)
        assert trace.gantt_ascii() == "(empty trace)"

    def test_gantt_narrow_width(self):
        """Footer must not raise for widths below the timestamp field."""
        workers = make_workers()
        trace = Trace(workers)
        trace.record_task(make_task(0), workers[0], 0.0, 0.0, 10.0)
        for width in (1, 5, 11, 12):
            art = trace.gantt_ascii(width=width)
            assert "cpu0" in art

    def test_gantt_nonpositive_width_clamped(self):
        workers = make_workers()
        trace = Trace(workers)
        trace.record_task(make_task(0), workers[0], 0.0, 0.0, 10.0)
        assert "K" in trace.gantt_ascii(width=0)

    def test_gantt_unnamed_type_uses_hash(self):
        workers = make_workers()
        trace = Trace(workers)
        trace.record_task(Task(0, ""), workers[0], 0.0, 0.0, 10.0)
        assert "#" in trace.gantt_ascii(width=20)


class TestPracticalCriticalPathEdges:
    def test_empty_trace(self):
        assert Trace(make_workers()).practical_critical_path([]) == []

    def test_single_record(self):
        workers = make_workers()
        trace = Trace(workers)
        a = make_task(0)
        trace.record_task(a, workers[0], 0.0, 0.0, 5.0)
        chain = trace.practical_critical_path([a])
        assert [r.tid for r in chain] == [0]

    def test_prefers_latest_blocker(self):
        """The chain follows whichever candidate finished last: a DAG
        predecessor beating the worker's previous occupant."""
        workers = make_workers()
        trace = Trace(workers)
        dep = make_task(0)
        occupant = make_task(1)  # same worker, ends earlier than dep
        final = make_task(2, preds=[dep])
        trace.record_task(occupant, workers[0], 0.0, 0.0, 3.0)
        trace.record_task(dep, workers[1], 0.0, 0.0, 8.0)
        trace.record_task(final, workers[0], 8.0, 8.0, 12.0)
        chain = trace.practical_critical_path([dep, occupant, final])
        assert [r.tid for r in chain] == [0, 2]

    def test_unknown_tasks_fall_back_to_worker_chain(self):
        """Without DAG info the chain still follows worker occupancy."""
        workers = make_workers()
        trace = Trace(workers)
        a, b = make_task(0), make_task(1)
        trace.record_task(a, workers[0], 0.0, 0.0, 5.0)
        trace.record_task(b, workers[0], 5.0, 5.0, 9.0)
        chain = trace.practical_critical_path([])  # no task objects given
        assert [r.tid for r in chain] == [0, 1]
