"""STF dependency-inference tests: R/W/RW/COMMUTE semantics."""

import pytest

from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode

R, W, RW, C = AccessMode.R, AccessMode.W, AccessMode.RW, AccessMode.COMMUTE


def preds(task):
    return {p.tid for p in task.preds}


class TestBasicDependencies:
    def test_read_after_write(self):
        flow = TaskFlow()
        h = flow.data(8)
        writer = flow.submit("w", [(h, W)])
        reader = flow.submit("r", [(h, R)])
        assert preds(reader) == {writer.tid}

    def test_independent_readers(self):
        flow = TaskFlow()
        h = flow.data(8)
        writer = flow.submit("w", [(h, W)])
        r1 = flow.submit("r", [(h, R)])
        r2 = flow.submit("r", [(h, R)])
        assert preds(r1) == {writer.tid}
        assert preds(r2) == {writer.tid}
        assert r2.tid not in preds(r1)

    def test_write_after_read_waits_for_all_readers(self):
        flow = TaskFlow()
        h = flow.data(8)
        w0 = flow.submit("w", [(h, W)])
        r1 = flow.submit("r", [(h, R)])
        r2 = flow.submit("r", [(h, R)])
        w1 = flow.submit("w", [(h, W)])
        assert preds(w1) == {r1.tid, r2.tid}
        assert w0.tid not in preds(w1)  # covered transitively

    def test_write_after_write_serializes(self):
        flow = TaskFlow()
        h = flow.data(8)
        w0 = flow.submit("w", [(h, W)])
        w1 = flow.submit("w", [(h, W)])
        assert preds(w1) == {w0.tid}

    def test_rw_chain(self):
        flow = TaskFlow()
        h = flow.data(8)
        tasks = [flow.submit("t", [(h, RW)]) for _ in range(4)]
        for earlier, later in zip(tasks, tasks[1:]):
            assert preds(later) == {earlier.tid}

    def test_multi_handle_dependencies_deduplicated(self):
        flow = TaskFlow()
        h1, h2 = flow.data(8), flow.data(8)
        producer = flow.submit("p", [(h1, W), (h2, W)])
        consumer = flow.submit("c", [(h1, R), (h2, R)])
        assert consumer.preds.count(producer) == 1

    def test_no_false_dependencies_between_disjoint_handles(self):
        flow = TaskFlow()
        h1, h2 = flow.data(8), flow.data(8)
        a = flow.submit("a", [(h1, RW)])
        b = flow.submit("b", [(h2, RW)])
        assert preds(b) == set()
        assert a.succs == []


class TestCommute:
    def test_commuters_mutually_independent(self):
        flow = TaskFlow()
        h = flow.data(8)
        w = flow.submit("w", [(h, W)])
        c1 = flow.submit("c", [(h, C)])
        c2 = flow.submit("c", [(h, C)])
        assert preds(c1) == {w.tid}
        assert preds(c2) == {w.tid}

    def test_reader_after_group_waits_for_all_commuters(self):
        flow = TaskFlow()
        h = flow.data(8)
        flow.submit("w", [(h, W)])
        c1 = flow.submit("c", [(h, C)])
        c2 = flow.submit("c", [(h, C)])
        r = flow.submit("r", [(h, R)])
        assert preds(r) == {c1.tid, c2.tid}

    def test_reader_closes_group(self):
        flow = TaskFlow()
        h = flow.data(8)
        flow.submit("w", [(h, W)])
        flow.submit("c", [(h, C)])
        r = flow.submit("r", [(h, R)])
        c3 = flow.submit("c", [(h, C)])
        # The new commuter belongs to a fresh group based on the reader.
        assert preds(c3) == {r.tid}

    def test_writer_after_group(self):
        flow = TaskFlow()
        h = flow.data(8)
        flow.submit("w", [(h, W)])
        c1 = flow.submit("c", [(h, C)])
        c2 = flow.submit("c", [(h, C)])
        w2 = flow.submit("w", [(h, W)])
        assert preds(w2) == {c1.tid, c2.tid}

    def test_commuter_after_readers(self):
        flow = TaskFlow()
        h = flow.data(8)
        flow.submit("w", [(h, W)])
        r1 = flow.submit("r", [(h, R)])
        r2 = flow.submit("r", [(h, R)])
        c = flow.submit("c", [(h, C)])
        assert preds(c) == {r1.tid, r2.tid}

    def test_full_sequence_matches_worked_example(self):
        # W1, C1, C2, R1, C3, W2 — the example from the module design.
        flow = TaskFlow()
        h = flow.data(8)
        w1 = flow.submit("w1", [(h, W)])
        c1 = flow.submit("c1", [(h, C)])
        c2 = flow.submit("c2", [(h, C)])
        r1 = flow.submit("r1", [(h, R)])
        c3 = flow.submit("c3", [(h, C)])
        w2 = flow.submit("w2", [(h, W)])
        assert preds(c1) == {w1.tid}
        assert preds(c2) == {w1.tid}
        assert preds(r1) == {c1.tid, c2.tid}
        assert preds(c3) == {r1.tid}
        assert preds(w2) == {c3.tid}


class TestValidation:
    def test_duplicate_handle_access_rejected(self):
        flow = TaskFlow()
        h = flow.data(8)
        with pytest.raises(ValueError, match="twice"):
            flow.submit("t", [(h, R), (h, W)])

    def test_foreign_handle_rejected(self):
        flow_a, flow_b = TaskFlow(), TaskFlow()
        h = flow_a.data(8)
        with pytest.raises(ValueError, match="not created"):
            flow_b.submit("t", [(h, R)])

    def test_finalized_flow_rejects_submissions(self):
        flow = TaskFlow()
        flow.data(8)
        flow.program()
        with pytest.raises(RuntimeError):
            flow.data(8)

    def test_no_implementation_rejected(self):
        flow = TaskFlow()
        with pytest.raises(ValueError, match="no implementation"):
            flow.submit("t", [], implementations=())


class TestProgram:
    def test_source_and_sink_tasks(self):
        flow = TaskFlow("p")
        h = flow.data(8)
        a = flow.submit("a", [(h, W)])
        b = flow.submit("b", [(h, RW)])
        program = flow.program()
        assert program.source_tasks() == [a]
        assert program.sink_tasks() == [b]
        assert program.n_edges == 1

    def test_total_flops(self):
        flow = TaskFlow()
        h = flow.data(8)
        flow.submit("a", [(h, W)], flops=10.0)
        flow.submit("b", [(h, RW)], flops=32.0)
        assert flow.program().total_flops() == 42.0

    def test_reset_runtime_state(self):
        flow = TaskFlow()
        h = flow.data(8)
        a = flow.submit("a", [(h, W)])
        b = flow.submit("b", [(h, R)])
        program = flow.program()
        b.n_unfinished_preds = 0
        h.valid_nodes = {0, 1, 2}
        a.sched["junk"] = 1
        program.reset_runtime_state()
        assert b.n_unfinished_preds == 1
        assert h.valid_nodes == {h.home_node}
        assert a.sched == {}
