"""Release-by-clock submission: Program.release_times through the engine."""

from __future__ import annotations

import pytest

from repro.analysis.validation import check_schedule
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import Program
from repro.schedulers.eager import Eager
from tests.conftest import make_chain_program, make_fork_join_program


def with_releases(program: Program, releases) -> Program:
    return Program(
        program.tasks, program.handles, name=program.name,
        release_times=releases,
    )


def run(machine, program, **kw):
    sim = Simulator(
        machine.platform(), Eager(),
        AnalyticalPerfModel(machine.calibration()),
        seed=0, record_trace=True, **kw,
    )
    return sim, sim.run(program)


class TestValidation:
    def test_wrong_length_rejected(self):
        program = make_chain_program(n=3)
        with pytest.raises(ValueError, match="entries for"):
            with_releases(program, [0.0, 0.0])

    def test_negative_rejected(self):
        program = make_chain_program(n=3)
        with pytest.raises(ValueError, match="negative"):
            with_releases(program, [0.0, -1.0, 0.0])

    def test_decreasing_rejected(self):
        program = make_chain_program(n=3)
        with pytest.raises(ValueError, match="non-decreasing"):
            with_releases(program, [0.0, 10.0, 5.0])

    def test_taskflow_programs_have_none(self):
        assert make_chain_program(n=3).release_times is None


class TestEngineHonorsReleases:
    def test_no_task_starts_before_its_release(self, hetero_machine):
        program = make_fork_join_program(width=6)
        releases = [0.0] + [500.0] * (len(program.tasks) - 1)
        _, res = run(hetero_machine, with_releases(program, releases))
        by_tid = {r.tid: r for r in res.trace.task_records}
        for tid, release in enumerate(releases):
            assert by_tid[tid].start >= release - 1e-9

    def test_all_zero_releases_match_no_releases(self, hetero_machine):
        program = make_fork_join_program(width=6)
        sim_a, base = run(hetero_machine, program)
        sim_b, zeroed = run(
            hetero_machine,
            with_releases(program, [0.0] * len(program.tasks)),
        )
        assert base.makespan == zeroed.makespan
        assert base.bytes_transferred == zeroed.bytes_transferred

    def test_far_future_release_stretches_the_run(self, hetero_machine):
        program = make_chain_program(n=4)
        releases = [0.0, 0.0, 0.0, 1e6]
        _, res = run(hetero_machine, with_releases(program, releases))
        assert res.makespan >= 1e6
        assert res.n_tasks == len(program)

    @pytest.mark.parametrize("window", [1, 2, None])
    def test_releases_compose_with_window(self, hetero_machine, window):
        program = make_fork_join_program(width=8)
        releases = [min(100.0 * i, 600.0) for i in range(len(program.tasks))]
        sim, res = run(
            hetero_machine, with_releases(program, releases),
            submission_window=window, check_invariants=True,
        )
        assert res.n_tasks == len(program)
        check_schedule(program, res.trace, sim.platform.workers)
