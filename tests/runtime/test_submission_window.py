"""Progressive submission window tests (STF task-window throttling)."""

import pytest

from repro.analysis.validation import check_schedule
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.eager import Eager
from repro.schedulers.registry import make_scheduler
from repro.utils.validation import SchedulingError
from tests.conftest import make_chain_program, make_fork_join_program


def simulate(machine, program, window, scheduler=None):
    sim = Simulator(
        machine.platform(),
        scheduler or Eager(),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        submission_window=window,
    )
    return sim, sim.run(program)


class TestWindow:
    def test_window_one_serializes_submission_order(self, hetero_machine):
        program = make_fork_join_program(width=6)
        sim, res = simulate(hetero_machine, program, window=1)
        records = sorted(res.trace.task_records, key=lambda r: r.start)
        assert [r.tid for r in records] == sorted(r.tid for r in records)

    def test_small_window_cannot_beat_unbounded(self, hetero_machine):
        program = make_fork_join_program(width=16, flops=5e8)
        _, bounded = simulate(hetero_machine, program, window=2)
        _, unbounded = simulate(hetero_machine, program, window=None)
        assert bounded.makespan >= unbounded.makespan - 1e-6

    def test_wide_window_equals_unbounded(self, hetero_machine):
        program = make_fork_join_program(width=8)
        _, wide = simulate(hetero_machine, program, window=10_000)
        _, unbounded = simulate(hetero_machine, program, window=None)
        assert wide.makespan == pytest.approx(unbounded.makespan)

    @pytest.mark.parametrize("window", [1, 3, 7])
    def test_feasibility_and_completeness(self, hetero_machine, window):
        program = make_fork_join_program(width=10)
        sim, res = simulate(hetero_machine, program, window)
        assert res.n_tasks == len(program)
        check_schedule(program, res.trace, sim.platform.workers)

    @pytest.mark.parametrize("name", ["multiprio", "dmdas", "heteroprio"])
    def test_all_schedulers_respect_window(self, hetero_machine, name):
        program = make_chain_program(n=8)
        sim, res = simulate(
            hetero_machine, program, window=2, scheduler=make_scheduler(name)
        )
        check_schedule(program, res.trace, sim.platform.workers)

    def test_invalid_window_rejected(self, hetero_machine):
        with pytest.raises(SchedulingError):
            Simulator(
                hetero_machine.platform(),
                Eager(),
                AnalyticalPerfModel(hetero_machine.calibration()),
                submission_window=0,
            )
