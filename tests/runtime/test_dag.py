"""DAG utility tests: topological order, levels, critical path."""

import pytest

from repro.runtime.dag import (
    bottom_levels,
    critical_path_length,
    critical_path_tasks,
    max_width,
    task_type_histogram,
    top_levels,
    topological_order,
    validate_dag,
    work_per_type,
)
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, Task
from repro.utils.validation import ValidationError

R, W, RW = AccessMode.R, AccessMode.RW, AccessMode.RW


def diamond():
    """a -> (b, c) -> d with distinct flops."""
    flow = TaskFlow()
    h1, h2 = flow.data(8), flow.data(8)
    a = flow.submit("a", [(h1, AccessMode.W), (h2, AccessMode.W)], flops=1.0)
    b = flow.submit("b", [(h1, AccessMode.RW)], flops=10.0)
    c = flow.submit("c", [(h2, AccessMode.RW)], flops=3.0)
    d = flow.submit("d", [(h1, AccessMode.R), (h2, AccessMode.R)], flops=2.0)
    return flow.program(), (a, b, c, d)


def test_topological_order_respects_edges():
    program, _ = diamond()
    order = topological_order(program.tasks)
    pos = {t.tid: i for i, t in enumerate(order)}
    for task in program.tasks:
        for pred in task.preds:
            assert pos[pred.tid] < pos[task.tid]


def test_cycle_detected():
    a = Task(0, "a")
    b = Task(1, "b")
    a.preds.append(b); b.succs.append(a)
    b.preds.append(a); a.succs.append(b)
    with pytest.raises(ValidationError, match="cycle"):
        topological_order([a, b])


def test_validate_dag_catches_asymmetric_edge():
    a = Task(0, "a")
    b = Task(1, "b")
    b.preds.append(a)  # missing a.succs entry
    with pytest.raises(ValidationError, match="successor list"):
        validate_dag([a, b])


def test_validate_dag_catches_self_loop():
    a = Task(0, "a")
    a.preds.append(a)
    a.succs.append(a)
    with pytest.raises(ValidationError, match="itself"):
        validate_dag([a])


def test_bottom_levels_diamond():
    program, (a, b, c, d) = diamond()
    levels = bottom_levels(program.tasks, lambda t: t.flops)
    assert levels[d.tid] == 2.0
    assert levels[b.tid] == 12.0
    assert levels[c.tid] == 5.0
    assert levels[a.tid] == 13.0


def test_top_levels_diamond():
    program, (a, b, c, d) = diamond()
    levels = top_levels(program.tasks, lambda t: t.flops)
    assert levels[a.tid] == 0.0
    assert levels[b.tid] == 1.0
    assert levels[d.tid] == 11.0  # through b


def test_critical_path_length_and_chain():
    program, (a, b, c, d) = diamond()
    assert critical_path_length(program.tasks, lambda t: t.flops) == 13.0
    chain = critical_path_tasks(program.tasks, lambda t: t.flops)
    assert [t.tid for t in chain] == [a.tid, b.tid, d.tid]


def test_critical_path_empty():
    assert critical_path_length([], lambda t: 1.0) == 0.0
    assert critical_path_tasks([], lambda t: 1.0) == []


def test_histogram_and_work():
    program, _ = diamond()
    assert task_type_histogram(program.tasks) == {"a": 1, "b": 1, "c": 1, "d": 1}
    assert work_per_type(program.tasks)["b"] == 10.0


def test_max_width_diamond():
    program, _ = diamond()
    assert max_width(program.tasks) == 2


def test_max_width_chain():
    flow = TaskFlow()
    h = flow.data(8)
    for _ in range(5):
        flow.submit("t", [(h, AccessMode.RW)])
    assert max_width(flow.program().tasks) == 1
