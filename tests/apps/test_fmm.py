"""FMM generator tests: octree geometry, task graph shape, COMMUTE use."""

import numpy as np
import pytest

from repro.apps.fmm import (
    Octree,
    fmm_program,
    fmm_program_from_tree,
    generate_particles,
    leaf_occupancy,
)
from repro.runtime.dag import task_type_histogram, validate_dag
from repro.utils.validation import ValidationError


class TestParticles:
    @pytest.mark.parametrize("dist", ["uniform", "ellipsoid", "plummer"])
    def test_in_unit_cube(self, dist):
        pts = generate_particles(2000, dist, seed=1)
        assert pts.shape == (2000, 3)
        assert pts.min() >= 0.0 and pts.max() < 1.0

    def test_deterministic_with_seed(self):
        a = generate_particles(100, "uniform", seed=5)
        b = generate_particles(100, "uniform", seed=5)
        np.testing.assert_array_equal(a, b)

    def test_unknown_distribution(self):
        with pytest.raises(ValidationError):
            generate_particles(10, "spiral")

    def test_ellipsoid_is_sparser_than_uniform(self):
        n, height = 20000, 5
        uni = leaf_occupancy(generate_particles(n, "uniform", seed=2), height)
        ell = leaf_occupancy(generate_particles(n, "ellipsoid", seed=2), height)
        assert len(ell) < len(uni)
        # And more skewed: larger max occupancy.
        assert max(ell.values()) > max(uni.values())

    def test_occupancy_conserves_particles(self):
        pts = generate_particles(5000, "plummer", seed=3)
        occ = leaf_occupancy(pts, 4)
        assert sum(occ.values()) == 5000

    def test_occupancy_bad_shape(self):
        with pytest.raises(ValidationError):
            leaf_occupancy(np.zeros((5, 2)), 3)


class TestOctree:
    def test_single_leaf(self):
        tree = Octree(3, {(0, 0, 0): 10})
        assert tree.n_cells() == 3  # leaf + 2 ancestors
        assert len(tree.leaves()) == 1
        assert tree.leaves()[0].n_particles == 10

    def test_parent_links_and_counts(self):
        tree = Octree(2, {(0, 0, 0): 5, (1, 1, 1): 7})
        root = tree.cells_at(0)[0]
        assert root.n_particles == 12
        assert len(root.children) == 2

    def test_neighbors(self):
        occ = {(x, y, z): 1 for x in range(4) for y in range(4) for z in range(4)}
        tree = Octree(3, occ)
        corner = tree.levels[2][(0, 0, 0)]
        middle = tree.levels[2][(1, 1, 1)]
        assert len(tree.neighbors(corner)) == 7
        assert len(tree.neighbors(middle)) == 26

    def test_interaction_list_well_separated(self):
        occ = {(x, y, z): 1 for x in range(4) for y in range(4) for z in range(4)}
        tree = Octree(3, occ)
        cell = tree.levels[2][(0, 0, 0)]
        ilist = tree.interaction_list(cell)
        near = {c.key for c in tree.neighbors(cell)} | {cell.key}
        assert ilist, "interior cells must have interaction partners"
        assert all(c.key not in near for c in ilist)
        assert all(c.level == cell.level for c in ilist)

    def test_interaction_list_bounded(self):
        occ = {(x, y, z): 1 for x in range(8) for y in range(8) for z in range(8)}
        tree = Octree(4, occ)
        for cell in tree.cells_at(3):
            assert len(tree.interaction_list(cell)) <= 189

    def test_empty_occupancy_rejected(self):
        with pytest.raises(ValidationError):
            Octree(3, {})

    def test_out_of_grid_leaf_rejected(self):
        with pytest.raises(ValidationError):
            Octree(2, {(5, 0, 0): 1})


class TestTaskGraph:
    def test_task_mix_and_validity(self):
        program = fmm_program(n_particles=5000, height=4, seed=9)
        validate_dag(program.tasks)
        hist = task_type_histogram(program.tasks)
        for kernel in ("p2m", "m2m", "m2l", "l2p", "p2p"):
            assert hist.get(kernel, 0) > 0, kernel

    def test_p2m_per_leaf_and_p2p_per_leaf(self):
        pts = generate_particles(3000, "uniform", seed=1)
        occ = leaf_occupancy(pts, 4)
        tree = Octree(4, occ)
        program = fmm_program_from_tree(tree)
        hist = task_type_histogram(program.tasks)
        assert hist["p2m"] == len(tree.leaves())
        assert hist["p2p"] == len(tree.leaves())
        assert hist["l2p"] <= len(tree.leaves())

    def test_m2m_depends_on_children_p2m(self):
        program = fmm_program(n_particles=2000, height=3, seed=4)
        m2m = [t for t in program.tasks if t.type_name == "m2m"]
        assert m2m
        for task in m2m:
            assert all(p.type_name in ("p2m", "m2m") for p in task.preds)

    def test_wide_disconnected_dag(self):
        """The FMM DAG's defining property (Section VI-B): its critical
        path is tiny compared to its size."""
        from repro.runtime.dag import critical_path_length

        program = fmm_program(n_particles=20000, height=4, seed=2)
        cp_tasks = critical_path_length(program.tasks, lambda t: 1.0)
        assert cp_tasks <= 12
        assert len(program) > 300

    def test_p2p_and_l2p_commute_on_forces(self):
        program = fmm_program(n_particles=2000, height=3, seed=4)
        from repro.runtime.task import AccessMode

        p2p = [t for t in program.tasks if t.type_name == "p2p"]
        l2p = [t for t in program.tasks if t.type_name == "l2p"]
        assert any(
            mode is AccessMode.COMMUTE for t in p2p for _, mode in t.accesses
        )
        # No ordering edges between a leaf's p2p and l2p (they commute).
        for t in p2p:
            assert all(s.type_name != "l2p" for s in t.succs)
            assert all(p.type_name != "l2p" for p in t.preds)

    def test_p2p_work_scales_quadratically_with_occupancy(self):
        from repro.runtime.dag import work_per_type

        small = fmm_program(n_particles=2000, height=4, seed=1)
        large = fmm_program(n_particles=20000, height=4, seed=1)
        # 10x the particles in the same leaves -> ~100x the near-field work.
        ratio = work_per_type(large.tasks)["p2p"] / work_per_type(small.tasks)["p2p"]
        assert ratio > 30
        # Total work grows too (the far field is occupancy-independent).
        assert large.total_flops() > 1.3 * small.total_flops()
