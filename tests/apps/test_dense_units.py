"""Dense building-block units: TiledMatrix and expert priorities."""

import pytest

from repro.apps.dense.priorities import (
    PRIORITY_LEVELS,
    assign_bottom_level_priorities,
    clear_priorities,
)
from repro.apps.dense.tiled_matrix import TiledMatrix
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode


class TestTiledMatrix:
    def test_lazy_registration(self):
        flow = TaskFlow()
        A = TiledMatrix(flow, 4, 32)
        assert A.n_registered() == 0
        A.tile(0, 0)
        A.tile(0, 0)  # same handle
        assert A.n_registered() == 1

    def test_tile_identity(self):
        flow = TaskFlow()
        A = TiledMatrix(flow, 4, 32)
        assert A.tile(1, 2) is A.tile(1, 2)
        assert A.tile(1, 2) is not A.tile(2, 1)

    def test_sizes_and_labels(self):
        flow = TaskFlow()
        A = TiledMatrix(flow, 3, 64, name="B", dtype_bytes=4)
        handle = A.tile(2, 1)
        assert handle.size == 4 * 64 * 64
        assert handle.label == "B[2,1]"
        assert A.n == 192

    def test_bounds_checked(self):
        flow = TaskFlow()
        A = TiledMatrix(flow, 3, 64)
        with pytest.raises(IndexError):
            A.tile(3, 0)
        with pytest.raises(IndexError):
            A.tile(-1, 0)

    def test_lower_only_rejects_upper(self):
        flow = TaskFlow()
        A = TiledMatrix(flow, 3, 64, lower_only=True)
        A.tile(2, 1)
        with pytest.raises(IndexError, match="diagonal"):
            A.tile(1, 2)


class TestPriorities:
    def build(self):
        flow = TaskFlow()
        h = flow.data(8)
        a = flow.submit("a", [(h, AccessMode.W)], flops=10.0)
        b = flow.submit("b", [(h, AccessMode.RW)], flops=1.0)
        return flow.program(), a, b

    def test_bottom_level_priorities_ordered(self):
        program, a, b = self.build()
        assign_bottom_level_priorities(program)
        assert a.priority > b.priority
        assert a.priority == PRIORITY_LEVELS  # the critical source

    def test_priorities_bounded(self):
        program, *_ = self.build()
        assign_bottom_level_priorities(program)
        assert all(0 <= t.priority <= PRIORITY_LEVELS for t in program.tasks)

    def test_clear(self):
        program, a, _ = self.build()
        assign_bottom_level_priorities(program)
        clear_priorities(program)
        assert all(t.priority == 0 for t in program.tasks)

    def test_empty_program_noop(self):
        program = TaskFlow().program()
        assign_bottom_level_priorities(program)  # must not raise

    def test_zero_flops_noop(self):
        flow = TaskFlow()
        h = flow.data(8)
        flow.submit("a", [(h, AccessMode.W)], flops=0.0)
        program = flow.program()
        assign_bottom_level_priorities(program)
        assert program.tasks[0].priority == 0
