"""Sparse QR generator tests: fronts, trees, matrices, task graph."""

import pytest

from repro.apps.sparseqr import (
    Front,
    MATRICES,
    TreeProfile,
    matrix_by_name,
    matrix_tree,
    sparse_qr_program,
    synthetic_elimination_tree,
)
from repro.runtime.dag import task_type_histogram, validate_dag
from repro.utils.validation import ValidationError


class TestFront:
    def test_cb_bounded_by_min_dim(self):
        front = Front(0, nrows=1000, ncols=100, npiv=60)
        assert front.cb_rows == 40  # min(m, n) - k
        assert front.cb_cols == 40

    def test_factor_flops_positive_and_cubic(self):
        small = Front(0, 100, 100, 50)
        big = Front(1, 200, 200, 100)
        assert 0 < small.factor_flops() < big.factor_flops()
        assert big.factor_flops() / small.factor_flops() == pytest.approx(8.0, rel=0.1)

    def test_invalid_dims(self):
        with pytest.raises(ValidationError):
            Front(0, 10, 10, 0)
        with pytest.raises(ValidationError):
            Front(0, 5, 10, 8)  # nrows < npiv


class TestTreeGen:
    def test_front_count_close_to_profile(self):
        profile = TreeProfile(n_fronts=200)
        tree = synthetic_elimination_tree(profile, seed=1)
        assert 150 <= len(tree) <= 200

    def test_postorder_children_first(self):
        tree = synthetic_elimination_tree(TreeProfile(n_fronts=80), seed=2)
        seen = set()
        for front in tree.postorder():
            for child in front.children:
                assert child.fid in seen
            seen.add(front.fid)

    def test_flop_targeting(self):
        profile = TreeProfile(n_fronts=150, root_cols=1500)
        target = 5e11
        tree = synthetic_elimination_tree(profile, target_flops=target, seed=3)
        assert tree.total_factor_flops() == pytest.approx(target, rel=0.25)

    def test_deterministic(self):
        a = synthetic_elimination_tree(TreeProfile(n_fronts=60), seed=7)
        b = synthetic_elimination_tree(TreeProfile(n_fronts=60), seed=7)
        assert [(f.nrows, f.ncols, f.npiv) for f in a.fronts] == [
            (f.nrows, f.ncols, f.npiv) for f in b.fronts
        ]

    def test_front_sizes_grow_toward_root(self):
        tree = synthetic_elimination_tree(TreeProfile(n_fronts=200), seed=4)
        by_depth: dict[int, list[int]] = {}
        for front in tree.fronts:
            by_depth.setdefault(front.depth, []).append(front.ncols)
        depths = sorted(by_depth)
        mean_top = sum(by_depth[depths[0]]) / len(by_depth[depths[0]])
        mean_bottom = sum(by_depth[depths[-1]]) / len(by_depth[depths[-1]])
        assert mean_top > 2 * mean_bottom


class TestMatrices:
    def test_collection_matches_paper_table(self):
        assert len(MATRICES) == 10
        rucci = matrix_by_name("Rucci1")
        assert (rucci.rows, rucci.cols, rucci.nnz) == (1977885, 109900, 7791168)
        tf18 = matrix_by_name("TF18")
        assert tf18.gflops == 229042

    def test_sorted_by_gflops_in_fig7(self):
        from repro.experiments.fig7_matrices import run_fig7

        rows = run_fig7(scale=0.02)
        gflops = [r.spec.gflops for r in rows]
        assert gflops == sorted(gflops)

    def test_unknown_matrix(self):
        with pytest.raises(ValidationError):
            matrix_by_name("bogus")

    def test_tree_scales_with_op_count(self):
        small = matrix_tree(matrix_by_name("cat_ears_4_4"), scale=0.05)
        large = matrix_tree(matrix_by_name("TF17"), scale=0.05)
        assert large.total_factor_flops() > 10 * small.total_factor_flops()


class TestTaskGraph:
    def test_valid_dag_with_expected_kernels(self):
        tree = matrix_tree(matrix_by_name("e18"), scale=0.02)
        program = sparse_qr_program(tree)
        validate_dag(program.tasks)
        hist = task_type_histogram(program.tasks)
        assert hist["assemble"] > 0
        assert hist["front_geqrt"] > 0
        assert hist["front_tsmqr"] > 0

    def test_parent_assembly_depends_on_children(self):
        tree = synthetic_elimination_tree(TreeProfile(n_fronts=30), seed=5)
        program = sparse_qr_program(tree)
        # Any front with children: its assemble must (transitively through
        # the CB handle) depend on a child task.
        assembles = [t for t in program.tasks
                     if t.type_name == "assemble" and t.tag[0] == "assemble"]
        with_children = [f for f in tree.fronts if f.children]
        assert with_children
        by_front = {}
        for t in assembles:
            by_front.setdefault(t.tag[1], []).append(t)
        for front in with_children:
            deps_ok = any(t.preds for t in by_front[front.fid])
            assert deps_ok, f"front {front.fid} assembly has no dependencies"

    def test_irregular_granularity(self):
        """Front size spread must translate into orders-of-magnitude task
        flop spread — the paper's defining feature of this workload."""
        tree = matrix_tree(matrix_by_name("TF17"), scale=0.05)
        program = sparse_qr_program(tree)
        flops = sorted(t.flops for t in program.tasks if t.flops > 0)
        assert flops[-1] / flops[0] > 1e3

    def test_2d_fronts_only_above_threshold(self):
        tree = synthetic_elimination_tree(
            TreeProfile(n_fronts=40, root_cols=4000), seed=6
        )
        program = sparse_qr_program(tree, tile=256, tile2d_threshold=4)
        hist = task_type_histogram(program.tasks)
        # tsqrt kernels only appear in 2D-partitioned fronts.
        assert hist.get("front_tsqrt", 0) > 0

    def test_access_lists_bounded(self):
        """Assembly chunking must keep access lists small (the heaps scan
        them in the locality heuristic)."""
        tree = matrix_tree(matrix_by_name("TF18"), scale=0.02)
        program = sparse_qr_program(tree)
        assert max(len(t.accesses) for t in program.tasks) <= 64
