"""Flop-model units across the three applications."""

import pytest

from repro.apps.fmm import kernels as fmm_k
from repro.apps.sparseqr.taskgraph import assemble_flops, panel_flops, update_flops
from repro.apps.sparseqr.fronts import Front
from repro.utils.validation import ValidationError


class TestFmmKernels:
    def test_expansion_terms(self):
        assert fmm_k.expansion_terms(5) == 36
        with pytest.raises(ValidationError):
            fmm_k.expansion_terms(0)

    def test_p2p_quadratic_in_targets(self):
        small = fmm_k.p2p_flops(100, 0)
        large = fmm_k.p2p_flops(200, 0)
        assert large == pytest.approx(4 * small)

    def test_p2p_includes_neighbor_sources(self):
        assert fmm_k.p2p_flops(100, 500) > fmm_k.p2p_flops(100, 0)

    def test_m2l_linear_in_sources(self):
        one = fmm_k.m2l_flops(1, 36)
        many = fmm_k.m2l_flops(27, 36)
        assert many == pytest.approx(27 * one)

    def test_translation_kernels_quadratic_in_terms(self):
        assert fmm_k.m2m_flops(8, 72) == pytest.approx(4 * fmm_k.m2m_flops(8, 36))
        assert fmm_k.l2l_flops(72) == pytest.approx(4 * fmm_k.l2l_flops(36))

    def test_particle_kernels_linear(self):
        assert fmm_k.p2m_flops(200, 36) == pytest.approx(2 * fmm_k.p2m_flops(100, 36))
        assert fmm_k.l2p_flops(200, 36) == pytest.approx(2 * fmm_k.l2p_flops(100, 36))


class TestSparseQrKernels:
    def test_panel_flops_positive_and_monotone(self):
        assert 0 < panel_flops(500, 128) < panel_flops(5000, 128)

    def test_panel_flops_never_negative(self):
        assert panel_flops(10, 128) >= 0.0  # m < w/3 edge

    def test_update_scales_with_all_dims(self):
        base = update_flops(1000, 128, 128)
        assert update_flops(2000, 128, 128) == pytest.approx(2 * base)
        assert update_flops(1000, 256, 128) == pytest.approx(2 * base)
        assert update_flops(1000, 128, 64) == pytest.approx(base / 2)

    def test_assemble_counts_children_cbs(self):
        parent = Front(0, 500, 300, 150)
        child1 = Front(1, 200, 150, 80)
        child2 = Front(2, 100, 90, 40)
        child1.parent = parent
        child2.parent = parent
        parent.children = [child1, child2]
        expected = 2.0 * (
            child1.cb_rows * child1.cb_cols + child2.cb_rows * child2.cb_cols
        )
        assert assemble_flops(parent) == pytest.approx(expected)

    def test_leaf_assemble_is_zero(self):
        leaf = Front(0, 100, 80, 40)
        assert assemble_flops(leaf) == 0.0
