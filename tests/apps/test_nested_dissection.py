"""Nested-dissection tree generator tests."""

import pytest

from repro.apps.sparseqr.nested_dissection import nested_dissection_tree
from repro.apps.sparseqr.taskgraph import sparse_qr_program
from repro.runtime.dag import validate_dag
from repro.utils.validation import ValidationError


class TestStructure:
    def test_root_separator_scales_like_sqrt_n(self):
        small = nested_dissection_tree(16, 16)
        large = nested_dissection_tree(64, 64)
        root_small = small.roots()[0]
        root_large = large.roots()[0]
        # Separator of an n x n grid ~ n: 4x the grid side -> 4x pivots.
        assert root_large.npiv == pytest.approx(4 * root_small.npiv, rel=0.2)

    def test_balanced_binary_tree(self):
        tree = nested_dissection_tree(32, 32)
        root = tree.roots()[0]
        assert len(root.children) == 2
        sizes = [len(list(_descendants(c))) for c in root.children]
        assert abs(sizes[0] - sizes[1]) <= max(sizes) * 0.3

    def test_leaves_are_small(self):
        tree = nested_dissection_tree(32, 32, leaf_points=16, dofs=1)
        for leaf in tree.leaves():
            assert leaf.npiv <= 3 * 16  # leaf points (+rounding slack)

    def test_fronts_shrink_with_depth(self):
        tree = nested_dissection_tree(64, 64)
        by_depth: dict[int, list[int]] = {}
        for front in tree.fronts:
            by_depth.setdefault(front.depth, []).append(front.npiv)
        depths = sorted(by_depth)
        assert max(by_depth[depths[0]]) > max(by_depth[depths[-1]])

    def test_dofs_scale_dimensions(self):
        base = nested_dissection_tree(16, 16, dofs=1)
        scaled = nested_dissection_tree(16, 16, dofs=3)
        assert scaled.roots()[0].npiv == 3 * base.roots()[0].npiv

    def test_rectangular_grid(self):
        tree = nested_dissection_tree(64, 8)
        validate_tree_shapes(tree)

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            nested_dissection_tree(0, 8)
        with pytest.raises(ValidationError):
            nested_dissection_tree(8, 8, dofs=0)


class TestTaskGraph:
    def test_program_builds_and_validates(self):
        tree = nested_dissection_tree(32, 32, dofs=2)
        program = sparse_qr_program(tree)
        validate_dag(program.tasks)
        assert len(program) > len(tree)

    def test_postorder_consistency(self):
        tree = nested_dissection_tree(24, 24)
        order = tree.postorder()
        assert len(order) == len(tree)
        assert order[-1].parent is None


def _descendants(front):
    yield front
    for child in front.children:
        yield from _descendants(child)


def validate_tree_shapes(tree):
    for front in tree.fronts:
        assert front.npiv >= 1
        assert front.ncols >= front.npiv
        assert front.nrows >= front.npiv
