"""Dense generator tests: task counts, DAG shape, flops, priorities."""

import pytest

from repro.apps.dense import (
    cholesky_program,
    cholesky_task_count,
    kernels,
    lu_program,
    lu_task_count,
    qr_program,
    qr_task_count,
)
from repro.runtime.dag import (
    critical_path_length,
    task_type_histogram,
    topological_order,
    validate_dag,
)


class TestCholesky:
    @pytest.mark.parametrize("nt", [1, 2, 3, 5, 8])
    def test_task_count_closed_form(self, nt):
        program = cholesky_program(nt, 64)
        assert len(program) == cholesky_task_count(nt)
        validate_dag(program.tasks)

    def test_kernel_mix(self):
        nt = 5
        hist = task_type_histogram(cholesky_program(nt, 64).tasks)
        assert hist["potrf"] == nt
        assert hist["trsm"] == nt * (nt - 1) // 2
        assert hist["syrk"] == nt * (nt - 1) // 2
        assert hist["gemm"] == nt * (nt - 1) * (nt - 2) // 6

    def test_total_flops_close_to_n_cubed_over_3(self):
        nt, b = 10, 128
        program = cholesky_program(nt, b)
        n = nt * b
        assert program.total_flops() == pytest.approx(n**3 / 3, rel=0.25)

    def test_first_task_is_potrf_last_depends_on_everything(self):
        program = cholesky_program(4, 64)
        order = topological_order(program.tasks)
        assert order[0].type_name == "potrf"
        sinks = program.sink_tasks()
        assert len(sinks) == 1
        assert sinks[0].type_name == "potrf"  # POTRF(nt-1, nt-1)

    def test_priorities_decrease_along_k(self):
        program = cholesky_program(6, 64)
        potrfs = sorted(
            (t for t in program.tasks if t.type_name == "potrf"),
            key=lambda t: t.tag[1],
        )
        prios = [t.priority for t in potrfs]
        assert prios == sorted(prios, reverse=True)

    def test_no_priorities_option(self):
        program = cholesky_program(4, 64, with_priorities=False)
        assert all(t.priority == 0 for t in program.tasks)

    def test_only_lower_triangle_registered(self):
        program = cholesky_program(4, 64)
        # nt*(nt+1)/2 = 10 tiles for nt=4.
        assert len(program.handles) == 10


class TestLU:
    @pytest.mark.parametrize("nt", [1, 2, 4, 6])
    def test_task_count_closed_form(self, nt):
        program = lu_program(nt, 64)
        assert len(program) == lu_task_count(nt)
        validate_dag(program.tasks)

    def test_larger_than_cholesky(self):
        """LU's non-symmetric updates roughly double the work (the
        paper's Section VI-A)."""
        nt = 6
        chol = cholesky_program(nt, 64)
        lu = lu_program(nt, 64)
        assert lu.total_flops() > 1.7 * chol.total_flops()
        assert len(lu) > len(chol)

    def test_kernel_mix(self):
        nt = 4
        hist = task_type_histogram(lu_program(nt, 64).tasks)
        assert hist["getrf"] == nt
        assert hist["trsm"] == nt * (nt - 1)  # row + column panels
        assert hist["gemm"] == sum((nt - k - 1) ** 2 for k in range(nt))


class TestQR:
    @pytest.mark.parametrize("nt", [1, 2, 4, 6])
    def test_task_count_closed_form(self, nt):
        program = qr_program(nt, 64)
        assert len(program) == qr_task_count(nt)
        validate_dag(program.tasks)

    def test_kernel_mix(self):
        nt = 4
        hist = task_type_histogram(qr_program(nt, 64).tasks)
        assert hist["geqrt"] == nt
        assert hist["ormqr"] == nt * (nt - 1) // 2
        assert hist["tsqrt"] == nt * (nt - 1) // 2
        assert hist["tsmqr"] == sum((nt - k - 1) ** 2 for k in range(nt))

    def test_deeper_critical_path_than_cholesky(self):
        """The serial TSQRT panel chains make tile QR's critical path
        longer than Cholesky's at equal tile count."""
        nt, b = 8, 64
        qr_cp = critical_path_length(qr_program(nt, b).tasks, lambda t: 1.0)
        chol_cp = critical_path_length(cholesky_program(nt, b).tasks, lambda t: 1.0)
        assert qr_cp > chol_cp


class TestKernelFlops:
    def test_gemm_is_twice_syrk(self):
        assert kernels.gemm_flops(100) == 2 * kernels.syrk_flops(100)

    def test_potrf_smallest(self):
        b = 128
        assert kernels.potrf_flops(b) < kernels.trsm_flops(b) < kernels.gemm_flops(b)

    def test_invalid_tile_size(self):
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError):
            kernels.gemm_flops(0)

    def test_totals(self):
        assert kernels.cholesky_total_flops(300) == pytest.approx(300**3 / 3)
        assert kernels.lu_total_flops(300) == pytest.approx(2 * 300**3 / 3)
        assert kernels.qr_total_flops(300) == pytest.approx(4 * 300**3 / 3)
