"""Examples must stay runnable: execute each script with small inputs."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "multiprio" in out and "makespan" in out


def test_dense_cholesky(capsys):
    out = run_example("dense_cholesky.py", ["8", "512"], capsys)
    assert "intel-v100" in out and "Gantt" in out


def test_fmm_scheduling(capsys):
    out = run_example("fmm_scheduling.py", ["4000", "4"], capsys)
    assert "ellipsoid" in out and "multiprio" in out


def test_sparse_qr_ratios(capsys):
    out = run_example("sparse_qr_ratios.py", ["0.004"], capsys)
    assert "multiprio / dmdas" in out


def test_custom_scheduler(capsys):
    out = run_example("custom_scheduler.py", [], capsys)
    assert "greedy-speedup" in out


def test_efficiency_bounds(capsys):
    out = run_example("efficiency_bounds.py", ["8", "512"], capsys)
    assert "efficiency" in out and "lower bounds" in out


@pytest.mark.slow
def test_eviction_trace(capsys):
    out = run_example("eviction_trace.py", [], capsys)
    assert "eviction gains" in out
