"""Energy extension tests: accounting and the energy-aware scheduler."""

import pytest

from repro.analysis.validation import check_schedule
from repro.extensions.energy import (
    ArchPower,
    EnergyAwareMultiPrio,
    PowerModel,
    energy_of_result,
)
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.registry import make_scheduler
from tests.conftest import make_fork_join_program


class TestArchPower:
    def test_validation(self):
        with pytest.raises(Exception):
            ArchPower(busy_watts=0.0, idle_watts=0.0)
        with pytest.raises(ValueError):
            ArchPower(busy_watts=10.0, idle_watts=20.0)


class TestPowerModel:
    def test_defaults(self):
        model = PowerModel()
        assert model.arch_power("cuda").busy_watts > model.arch_power("cpu").busy_watts

    def test_override(self):
        model = PowerModel({"cpu": ArchPower(20.0, 5.0)})
        assert model.arch_power("cpu").busy_watts == 20.0
        assert model.arch_power("cuda").busy_watts == 250.0

    def test_unknown_arch_has_fallback(self):
        assert PowerModel().arch_power("tpu").busy_watts > 0

    def test_energy_us(self):
        model = PowerModel({"cpu": ArchPower(10.0, 1.0)})
        # 1 s busy + 1 s idle at (10, 1) W = 11 J.
        assert model.energy_us("cpu", 1e6, 1e6) == pytest.approx(11.0)


class TestEnergyOfResult:
    def test_busy_plus_idle_accounting(self, hetero_machine):
        program = make_fork_join_program(width=8, flops=5e8)
        sim = Simulator(
            hetero_machine.platform(),
            make_scheduler("multiprio"),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        joules = energy_of_result(res, sim.platform)
        assert joules > 0
        # Upper bound: everything busy at max power the whole makespan.
        worst = sum(
            PowerModel().arch_power(a).busy_watts
            * sim.platform.n_workers(a)
            * res.makespan
            * 1e-6
            for a in sim.platform.archs
        )
        assert joules <= worst + 1e-9

    def test_longer_run_costs_more_idle_energy(self, hetero_machine):
        program = make_fork_join_program(width=4, flops=1e8)
        sim = Simulator(
            hetero_machine.platform(),
            make_scheduler("eager"),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        base = energy_of_result(res, sim.platform)
        hot_idle = PowerModel({"cpu": ArchPower(12.0, 11.0)})
        assert energy_of_result(res, sim.platform, hot_idle) > base


class TestEnergyAwareScheduler:
    def test_is_feasible(self, hetero_machine):
        program = make_fork_join_program(width=16, flops=5e8)
        sim = Simulator(
            hetero_machine.platform(),
            EnergyAwareMultiPrio(),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        check_schedule(program, res.trace, sim.platform.workers)

    def test_shifts_work_toward_cpus(self, hetero_machine):
        """The relaxation must increase (or keep) the CPU share vs the
        baseline on a GPU-favoured workload."""
        program = make_fork_join_program(width=48, flops=8e8)
        pm = AnalyticalPerfModel(hetero_machine.calibration())

        def cpu_share(sched):
            sim = Simulator(hetero_machine.platform(), sched, pm, seed=0)
            res = sim.run(program)
            total = sum(res.exec_time_by_arch.values())
            return res.exec_time_by_arch.get("cpu", 0.0) / total, res

        base_share, base_res = cpu_share(make_scheduler("multiprio"))
        energy_share, energy_res = cpu_share(EnergyAwareMultiPrio())
        assert energy_share >= base_share

    def test_registry_name(self):
        assert EnergyAwareMultiPrio().name == "multiprio-energy"

    def test_invalid_relax(self):
        with pytest.raises(Exception):
            EnergyAwareMultiPrio(energy_relax=0.0)
