"""Energy extension tests: accounting and the energy-aware scheduler."""

import pytest

from repro.analysis.validation import check_schedule
from repro.check.differential import fingerprint
from repro.extensions.energy import (
    ArchPower,
    EdpMultiPrio,
    EnergyAwareMultiPrio,
    PowerModel,
    energy_of_result,
)
from repro.runtime.engine import Simulator
from repro.runtime.faults import FaultModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.registry import make_scheduler
from tests.conftest import make_fork_join_program


class TestArchPower:
    def test_validation(self):
        with pytest.raises(Exception):
            ArchPower(busy_watts=0.0, idle_watts=0.0)
        with pytest.raises(ValueError):
            ArchPower(busy_watts=10.0, idle_watts=20.0)


class TestPowerModel:
    def test_defaults(self):
        model = PowerModel()
        assert model.arch_power("cuda").busy_watts > model.arch_power("cpu").busy_watts

    def test_override(self):
        model = PowerModel({"cpu": ArchPower(20.0, 5.0)})
        assert model.arch_power("cpu").busy_watts == 20.0
        assert model.arch_power("cuda").busy_watts == 250.0

    def test_unknown_arch_raises(self):
        # A silently invented profile would corrupt every comparison on
        # platforms with e.g. fpga workers; unknown archs must raise.
        with pytest.raises(KeyError, match="tpu"):
            PowerModel().arch_power("tpu")

    def test_unknown_arch_explicit_default(self):
        fallback = ArchPower(busy_watts=50.0, idle_watts=10.0)
        assert PowerModel().arch_power("tpu", default=fallback) is fallback
        assert PowerModel().arch_power("tpu", default=None) is None

    def test_energy_us(self):
        model = PowerModel({"cpu": ArchPower(10.0, 1.0)})
        # 1 s busy + 1 s idle at (10, 1) W = 11 J.
        assert model.energy_us("cpu", 1e6, 1e6) == pytest.approx(11.0)


class TestEnergyOfResult:
    def test_busy_plus_idle_accounting(self, hetero_machine):
        program = make_fork_join_program(width=8, flops=5e8)
        sim = Simulator(
            hetero_machine.platform(),
            make_scheduler("multiprio"),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        joules = energy_of_result(res, sim.platform)
        assert joules > 0
        # Upper bound: everything busy at max power the whole makespan.
        worst = sum(
            PowerModel().arch_power(a).busy_watts
            * sim.platform.n_workers(a)
            * res.makespan
            * 1e-6
            for a in sim.platform.archs
        )
        assert joules <= worst + 1e-9

    def test_longer_run_costs_more_idle_energy(self, hetero_machine):
        program = make_fork_join_program(width=4, flops=1e8)
        sim = Simulator(
            hetero_machine.platform(),
            make_scheduler("eager"),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        base = energy_of_result(res, sim.platform)
        hot_idle = PowerModel({"cpu": ArchPower(12.0, 11.0)})
        assert energy_of_result(res, sim.platform, hot_idle) > base

    def test_dead_worker_horizon_is_clamped(self, hetero_machine):
        """Regression: a fail-stop casualty must draw idle watts only up
        to its death, not ``n_workers * makespan`` per arch."""
        program = make_fork_join_program(width=16, flops=5e8)
        pm = AnalyticalPerfModel(hetero_machine.calibration())

        def run(fault_model=None):
            sim = Simulator(
                hetero_machine.platform(), make_scheduler("multiprio"), pm,
                seed=0, fault_model=fault_model,
            )
            return sim.run(program), sim

        alive, sim = run()
        kill_at = alive.makespan * 0.1
        dead, sim = run(FaultModel(worker_kills={0: kill_at}))
        assert dead.death_us_by_worker[0] == pytest.approx(kill_at)
        got = energy_of_result(dead, sim.platform)
        # Recompute with worker 0's idle horizon stretched to the full
        # makespan (the old, buggy accounting): it must cost more.
        unclamped = dict(dead.death_us_by_worker)
        del unclamped[0]
        buggy = energy_of_result(
            type(dead)(**{**dead.__dict__, "death_us_by_worker": unclamped}),
            sim.platform,
        )
        idle_w = PowerModel().arch_power("cpu").idle_watts
        extra_j = (dead.makespan - kill_at) * idle_w * 1e-6
        assert buggy - got == pytest.approx(extra_j)


class TestEnergyAwareScheduler:
    def test_is_feasible(self, hetero_machine):
        program = make_fork_join_program(width=16, flops=5e8)
        sim = Simulator(
            hetero_machine.platform(),
            EnergyAwareMultiPrio(),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        check_schedule(program, res.trace, sim.platform.workers)

    def test_shifts_work_toward_cpus(self, hetero_machine):
        """The relaxation must increase (or keep) the CPU share vs the
        baseline on a GPU-favoured workload."""
        program = make_fork_join_program(width=48, flops=8e8)
        pm = AnalyticalPerfModel(hetero_machine.calibration())

        def cpu_share(sched):
            sim = Simulator(hetero_machine.platform(), sched, pm, seed=0)
            res = sim.run(program)
            total = sum(res.exec_time_by_arch.values())
            return res.exec_time_by_arch.get("cpu", 0.0) / total, res

        base_share, base_res = cpu_share(make_scheduler("multiprio"))
        energy_share, energy_res = cpu_share(EnergyAwareMultiPrio())
        assert energy_share >= base_share

    def test_registry_name(self):
        assert EnergyAwareMultiPrio().name == "multiprio-energy"
        assert type(make_scheduler("multiprio-energy")) is EnergyAwareMultiPrio

    def test_invalid_relax(self):
        with pytest.raises(Exception):
            EnergyAwareMultiPrio(energy_relax=0.0)

    def test_invalid_objective(self):
        with pytest.raises(Exception):
            EnergyAwareMultiPrio(objective="latency")

    @pytest.mark.parametrize("cls", [EnergyAwareMultiPrio, EdpMultiPrio])
    def test_neutral_watts_is_bit_identical_to_multiprio(
        self, hetero_machine, cls
    ):
        """Differential pin: with equal watts everywhere the relaxation
        can never fire (a slower worker never wins δ·P or δ²·P), so the
        variant must reproduce the base scheduler's schedule exactly —
        in particular the base backlog and slowdown-cap guards apply
        verbatim to best-arch workers."""
        program = make_fork_join_program(width=32, flops=8e8)
        pm = AnalyticalPerfModel(hetero_machine.calibration())
        neutral = PowerModel({
            "cpu": ArchPower(100.0, 10.0),
            "cuda": ArchPower(100.0, 10.0),
        })

        def run(sched):
            sim = Simulator(
                hetero_machine.platform(), sched, pm,
                seed=0, record_trace=True,
            )
            return fingerprint(sim.run(program))

        assert run(cls(power=neutral)) == run(make_scheduler("multiprio"))


class TestEdpMultiPrio:
    def test_registry_name(self):
        assert EdpMultiPrio().name == "multiprio-edp"
        assert EdpMultiPrio().objective == "edp"
        assert type(make_scheduler("multiprio-edp")) is EdpMultiPrio

    def test_objective_kwarg_equivalence(self):
        assert EnergyAwareMultiPrio(objective="edp").objective == "edp"

    def test_edp_is_at_most_as_aggressive_as_energy(self, hetero_machine):
        """δ²·P improves only if δ·P does (whenever the lean worker is
        slower), so EDP can shift at most as much work off the
        accelerators as the plain energy objective."""
        program = make_fork_join_program(width=48, flops=8e8)
        pm = AnalyticalPerfModel(hetero_machine.calibration())

        def cpu_share(sched):
            sim = Simulator(hetero_machine.platform(), sched, pm, seed=0)
            res = sim.run(program)
            return res.exec_time_by_arch.get("cpu", 0.0) / sum(
                res.exec_time_by_arch.values()
            )

        assert cpu_share(EdpMultiPrio()) <= cpu_share(EnergyAwareMultiPrio()) + 1e-12
