"""Hierarchical task expansion tests."""

import pytest

from repro.analysis.validation import check_schedule
from repro.extensions.hierarchical import BubbleSpec, HierarchicalFlow
from repro.runtime.dag import task_type_histogram, validate_dag
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.task import AccessMode
from repro.schedulers.registry import make_scheduler


def build(threshold=1e9, partitions=4, bubbles=(5e8, 2e9)):
    hf = HierarchicalFlow(BubbleSpec(threshold_flops=threshold, partitions=partitions))
    data = hf.data(1 << 20, label="X")
    hf.submit_bubble("seed", [(data, AccessMode.W)], flops=1e3)
    for i, flops in enumerate(bubbles):
        hf.submit_bubble("work", [(data, AccessMode.RW)], flops=flops, tag=i)
    return hf


class TestExpansion:
    def test_small_bubble_stays_coarse(self):
        hf = build(bubbles=(5e8,))
        assert hf.n_coarse >= 1
        hist = task_type_histogram(hf.program().tasks)
        assert "work" in hist
        assert "work_fine" not in hist

    def test_large_bubble_expands(self):
        hf = build(bubbles=(2e9,), partitions=4)
        assert hf.n_expanded == 1
        hist = task_type_histogram(hf.program().tasks)
        assert hist["work_fine"] == 4
        assert hist["split"] == 1  # RW output needs the scatter
        assert hist["merge"] == 1

    def test_write_only_bubble_skips_split(self):
        hf = HierarchicalFlow(BubbleSpec(threshold_flops=1e6, partitions=3))
        out = hf.data(1 << 20)
        hf.submit_bubble("init", [(out, AccessMode.W)], flops=1e7)
        hist = task_type_histogram(hf.program().tasks)
        assert "split" not in hist
        assert hist["merge"] == 1
        assert hist["init_fine"] == 3

    def test_fine_tasks_split_the_flops(self):
        hf = build(bubbles=(2e9,), partitions=4)
        fine = [t for t in hf.program().tasks if t.type_name == "work_fine"]
        assert all(t.flops == pytest.approx(5e8) for t in fine)

    def test_expansion_preserves_dependencies(self):
        """Fine tasks of bubble k must transitively wait for bubble k-1."""
        hf = build(bubbles=(2e9, 2e9))
        program = hf.program()
        validate_dag(program.tasks)
        splits = [t for t in program.tasks if t.type_name == "split"]
        assert len(splits) == 2
        # The second split reads X, written by the first bubble's merge.
        second = splits[1]
        assert any(p.type_name == "merge" for p in second.preds)

    def test_mixed_granularity_program_runs(self, hetero_machine):
        hf = build(bubbles=(5e8, 2e9, 3e9, 1e8))
        program = hf.program()
        sim = Simulator(
            hetero_machine.platform(),
            make_scheduler("multiprio"),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        check_schedule(program, res.trace, sim.platform.workers)

    def test_invalid_spec(self):
        with pytest.raises(Exception):
            BubbleSpec(partitions=0)
        with pytest.raises(Exception):
            BubbleSpec(threshold_flops=0.0)
