"""Hierarchical workload end-to-end: mixed granularity helps MultiPrio.

The paper's Section VII expects MultiPrio to beat Dmdas on hierarchical
workloads ("we expect better results than Dmdas when scheduling
hierarchical tasks"). This test builds a bubble chain whose expansions
produce the coarse-GPU + fine-CPU mix and checks MultiPrio lands within
a competitive envelope of the best policy (a weak but meaningful smoke
check; the quantitative study is the examples/bench layer's job).
"""

from repro.extensions.hierarchical import BubbleSpec, HierarchicalFlow
from repro.platform.machines import small_hetero
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.task import AccessMode
from repro.schedulers.registry import make_scheduler
from repro.utils.rng import make_rng


def hierarchical_workload(n_chains=6, depth=4, seed=0):
    rng = make_rng(seed)
    hf = HierarchicalFlow(BubbleSpec(threshold_flops=8e8, partitions=4))
    for c in range(n_chains):
        data = hf.data(4 << 20, label=f"chain{c}")
        hf.submit_bubble("seed", [(data, AccessMode.W)], flops=1e3)
        for d in range(depth):
            flops = float(rng.choice([2e8, 1.6e9, 3.2e9]))
            hf.submit_bubble("work", [(data, AccessMode.RW)], flops=flops, tag=(c, d))
    return hf


def test_mixed_granularity_end_to_end():
    hf = hierarchical_workload()
    program = hf.program()
    assert hf.n_expanded > 0 and hf.n_coarse > 0
    machine = small_hetero(n_cpus=6, n_gpus=1, gpu_streams=2)
    pm = AnalyticalPerfModel(machine.calibration())
    spans = {}
    for name in ("multiprio", "dmdas", "eager"):
        sim = Simulator(machine.platform(), make_scheduler(name), pm, seed=0,
                        record_trace=False)
        spans[name] = sim.run(program).makespan
    assert spans["multiprio"] <= 1.25 * min(spans.values())
    assert spans["multiprio"] < spans["eager"]
