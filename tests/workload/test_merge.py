"""merge_stream: relinking jobs into one composite program."""

from __future__ import annotations

import pytest

from repro.workload.merge import merge_stream
from repro.workload.stream import Job, JobStream, closed_loop_stream, trace_stream
from tests.conftest import make_chain_program, make_fork_join_program


def two_job_stream():
    return trace_stream(
        [
            (0.0, make_chain_program(n=3), "a"),
            (50.0, make_fork_join_program(width=4), "b"),
        ]
    )


class TestMerge:
    def test_dense_tids_and_spans(self):
        merged = merge_stream(two_job_stream())
        assert [t.tid for t in merged.tasks] == list(range(len(merged.tasks)))
        assert merged.jobs[0].first_tid == 0
        assert merged.jobs[0].n_tasks == 3
        assert merged.jobs[1].first_tid == 3
        total = sum(s.n_tasks for s in merged.jobs)
        assert total == len(merged.tasks)

    def test_release_times_follow_arrivals(self):
        merged = merge_stream(two_job_stream())
        assert merged.release_times is not None
        for span in merged.jobs:
            for tid in range(span.first_tid, span.first_tid + span.n_tasks):
                assert merged.release_times[tid] == span.arrival_us
        assert list(merged.release_times) == sorted(merged.release_times)

    def test_span_of_tid(self):
        merged = merge_stream(two_job_stream())
        assert merged.span_of_tid(0).jid == 0
        assert merged.span_of_tid(3).jid == 1
        with pytest.raises(KeyError):
            merged.span_of_tid(len(merged.tasks))

    def test_span_of_tid_boundaries(self):
        # The bisect rewrite must agree with the linear scan exactly at
        # every span edge: first and last tid of each job, and both
        # out-of-range sides.
        merged = merge_stream(two_job_stream())
        for span in merged.jobs:
            assert merged.span_of_tid(span.first_tid) is span
            assert merged.span_of_tid(span.first_tid + span.n_tasks - 1) is span
        with pytest.raises(KeyError):
            merged.span_of_tid(-1)
        with pytest.raises(KeyError):
            merged.span_of_tid(len(merged.tasks) + 100)

    def test_originals_untouched(self):
        stream = two_job_stream()
        before = [
            [(t.tid, t.n_unfinished_preds, len(t.succs)) for t in j.program.tasks]
            for j in stream.jobs
        ]
        merge_stream(stream)
        after = [
            [(t.tid, t.n_unfinished_preds, len(t.succs)) for t in j.program.tasks]
            for j in stream.jobs
        ]
        assert before == after

    def test_handles_cloned_per_job(self):
        merged = merge_stream(two_job_stream())
        assert [h.hid for h in merged.handles] == list(range(len(merged.handles)))
        assert all(h.label.startswith("j") for h in merged.handles)
        n_src = sum(len(j.program.handles) for j in two_job_stream().jobs)
        assert len(merged.handles) == n_src

    def test_task_attributes_preserved(self):
        stream = two_job_stream()
        merged = merge_stream(stream)
        for span, job in zip(merged.jobs, stream.jobs):
            for off, src in enumerate(job.program.tasks):
                clone = merged.tasks[span.first_tid + off]
                assert clone.type_name == src.type_name
                assert clone.flops == src.flops
                assert clone.implementations == src.implementations
                assert clone.priority == src.priority

    def test_edges_relinked_within_job(self):
        stream = two_job_stream()
        merged = merge_stream(stream)
        for span, job in zip(merged.jobs, stream.jobs):
            for off, src in enumerate(job.program.tasks):
                clone = merged.tasks[span.first_tid + off]
                assert sorted(p.tid - span.first_tid for p in clone.preds) == \
                    sorted(p.tid for p in src.preds)
                assert clone.n_unfinished_preds == len(clone.preds)

    def test_after_becomes_sink_to_source_edges(self):
        stream = closed_loop_stream(
            [lambda: make_chain_program(n=3)], n_clients=1, jobs_per_client=2
        )
        merged = merge_stream(stream)
        first, second = merged.jobs
        sink = merged.tasks[first.first_tid + first.n_tasks - 1]
        source = merged.tasks[second.first_tid]
        assert source in sink.succs
        assert sink in source.preds
        assert source.n_unfinished_preds == len(source.preds) >= 1

    def test_job_deadline_stamped_absolute(self):
        jobs = (
            Job(jid=0, arrival_us=100.0, program=make_chain_program(n=3),
                deadline_us=500.0),
            Job(jid=1, arrival_us=200.0, program=make_chain_program(n=2)),
        )
        merged = merge_stream(JobStream(name="dl", jobs=jobs))
        first, second = merged.jobs
        assert first.deadline_us == 600.0  # arrival + relative deadline
        for tid in range(first.first_tid, first.first_tid + first.n_tasks):
            assert merged.tasks[tid].deadline_us == 600.0
        # Best-effort job: span and tasks stay deadline-free.
        assert second.deadline_us == float("inf")
        for tid in range(second.first_tid, second.first_tid + second.n_tasks):
            assert merged.tasks[tid].deadline_us == float("inf")

    def test_task_own_deadline_keeps_tighter_of_two(self):
        from repro.runtime.stf import TaskFlow
        from repro.runtime.task import AccessMode

        tf = TaskFlow("own")
        h = tf.data(4096, label="h")
        tf.submit("gemm", [(h, AccessMode.W)], flops=1e6,
                  implementations=("cpu",), deadline_us=50.0)
        tf.submit("gemm", [(h, AccessMode.RW)], flops=1e6,
                  implementations=("cpu",), deadline_us=9000.0)
        job = Job(jid=0, arrival_us=100.0, program=tf.program(),
                  deadline_us=500.0)
        merged = merge_stream(JobStream(name="own", jobs=(job,)))
        # Own 50µs beats the job's 500µs; own 9000µs loses to it.
        # Both shift by the arrival like the release times do.
        assert merged.tasks[0].deadline_us == 150.0
        assert merged.tasks[1].deadline_us == 600.0

    def test_merge_order_is_arrival_then_jid(self):
        jobs = (
            Job(jid=0, arrival_us=5.0, program=make_chain_program(n=2)),
            Job(jid=1, arrival_us=5.0, program=make_chain_program(n=2)),
            Job(jid=2, arrival_us=9.0, program=make_chain_program(n=2)),
        )
        merged = merge_stream(JobStream(name="tie", jobs=jobs))
        assert [s.jid for s in merged.jobs] == [0, 1, 2]
