"""Job stream construction: validation and the three arrival generators."""

from __future__ import annotations

import math

import pytest

from repro.utils.validation import ValidationError
from repro.workload.stream import (
    Job,
    JobStream,
    closed_loop_stream,
    poisson_stream,
    trace_stream,
)
from tests.conftest import make_chain_program


def chain():
    return make_chain_program(n=3)


class TestValidation:
    def test_job_label(self):
        job = Job(jid=3, arrival_us=0.0, program=chain(), name="cholesky")
        assert job.label == "j3:cholesky"

    def test_jids_must_increase(self):
        jobs = (
            Job(jid=1, arrival_us=0.0, program=chain()),
            Job(jid=0, arrival_us=5.0, program=chain()),
        )
        with pytest.raises(ValidationError, match="strictly increasing"):
            JobStream(name="s", jobs=jobs)

    def test_negative_arrival_rejected(self):
        jobs = (Job(jid=0, arrival_us=-1.0, program=chain()),)
        with pytest.raises(ValidationError, match="negative arrival"):
            JobStream(name="s", jobs=jobs)

    def test_arrivals_must_be_ordered(self):
        jobs = (
            Job(jid=0, arrival_us=10.0, program=chain()),
            Job(jid=1, arrival_us=5.0, program=chain()),
        )
        with pytest.raises(ValidationError, match="ordered by arrival"):
            JobStream(name="s", jobs=jobs)

    def test_empty_program_rejected(self):
        from repro.runtime.stf import Program

        jobs = (Job(jid=0, arrival_us=0.0, program=Program([], [])),)
        with pytest.raises(ValidationError, match="empty program"):
            JobStream(name="s", jobs=jobs)

    def test_after_must_precede(self):
        jobs = (
            Job(jid=0, arrival_us=0.0, program=chain(), after=1),
            Job(jid=1, arrival_us=0.0, program=chain()),
        )
        with pytest.raises(ValidationError, match="does not precede"):
            JobStream(name="s", jobs=jobs)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            JobStream(name="empty", jobs=())

    def test_duplicate_jids_rejected(self):
        jobs = (
            Job(jid=0, arrival_us=0.0, program=chain()),
            Job(jid=0, arrival_us=1.0, program=chain()),
        )
        with pytest.raises(ValidationError, match="strictly increasing"):
            JobStream(name="s", jobs=jobs)

    @pytest.mark.parametrize("arrival", [math.nan, math.inf, -math.inf])
    def test_nonfinite_arrival_rejected(self, arrival):
        jobs = (Job(jid=0, arrival_us=arrival, program=chain()),)
        with pytest.raises(ValidationError, match="finite|negative"):
            JobStream(name="s", jobs=jobs)

    def test_unknown_qos_rejected(self):
        jobs = (Job(jid=0, arrival_us=0.0, program=chain(), qos="platinum"),)
        with pytest.raises(ValidationError, match="unknown qos"):
            JobStream(name="s", jobs=jobs)

    def test_counts_and_tenants(self):
        jobs = (
            Job(jid=0, arrival_us=0.0, program=chain(), tenant="b"),
            Job(jid=1, arrival_us=1.0, program=chain(), tenant="a"),
            Job(jid=2, arrival_us=2.0, program=chain(), tenant="b"),
        )
        stream = JobStream(name="s", jobs=jobs)
        assert len(stream) == 3
        assert stream.n_tasks == 9
        assert stream.tenants == ("b", "a")


class TestPoisson:
    def test_same_seed_same_stream(self):
        a = poisson_stream([chain], rate_jobs_per_s=50.0, n_jobs=6, seed=3)
        b = poisson_stream([chain], rate_jobs_per_s=50.0, n_jobs=6, seed=3)
        assert [j.arrival_us for j in a.jobs] == [j.arrival_us for j in b.jobs]

    def test_seed_changes_arrivals(self):
        a = poisson_stream([chain], rate_jobs_per_s=50.0, n_jobs=6, seed=3)
        b = poisson_stream([chain], rate_jobs_per_s=50.0, n_jobs=6, seed=4)
        assert [j.arrival_us for j in a.jobs] != [j.arrival_us for j in b.jobs]

    def test_first_job_at_zero_then_nondecreasing(self):
        stream = poisson_stream([chain], rate_jobs_per_s=100.0, n_jobs=5)
        arrivals = [j.arrival_us for j in stream.jobs]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)

    def test_round_robin_builders_and_tenants(self):
        stream = poisson_stream(
            [("a", chain), ("b", chain)],
            rate_jobs_per_s=10.0, n_jobs=4, tenants=("t0", "t1"),
        )
        assert [j.name for j in stream.jobs] == ["a", "b", "a", "b"]
        assert [j.tenant for j in stream.jobs] == ["t0", "t1", "t0", "t1"]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            poisson_stream([chain], rate_jobs_per_s=0.0, n_jobs=2)
        with pytest.raises(ValidationError):
            poisson_stream([chain], rate_jobs_per_s=10.0, n_jobs=0)
        with pytest.raises(ValidationError):
            poisson_stream([], rate_jobs_per_s=10.0, n_jobs=2)


class TestClosedLoop:
    def test_clients_chain_their_own_jobs(self):
        stream = closed_loop_stream([chain], n_clients=2, jobs_per_client=3)
        assert len(stream) == 6
        assert all(j.arrival_us == 0.0 for j in stream.jobs)
        for client in (0, 1):
            mine = [j for j in stream.jobs if j.tenant == f"client{client}"]
            assert mine[0].after is None
            for prev, cur in zip(mine, mine[1:]):
                assert cur.after == prev.jid

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            closed_loop_stream([chain], n_clients=0, jobs_per_client=1)
        with pytest.raises(ValidationError):
            closed_loop_stream([chain], n_clients=1, jobs_per_client=0)


class TestTrace:
    def test_entries_sorted_by_arrival(self):
        p = chain()
        stream = trace_stream(
            [(30.0, p, "b"), (10.0, p, "a"), (20.0, p, "a")]
        )
        assert [j.arrival_us for j in stream.jobs] == [10.0, 20.0, 30.0]
        assert [j.tenant for j in stream.jobs] == ["a", "a", "b"]
        assert [j.jid for j in stream.jobs] == [0, 1, 2]

    def test_four_tuples_set_qos(self):
        p = chain()
        stream = trace_stream(
            [(0.0, p, "a", "guaranteed"), (1.0, p, "b")]
        )
        assert [j.qos for j in stream.jobs] == ["guaranteed", "burstable"]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError, match="no entries"):
            trace_stream([])

    @pytest.mark.parametrize("entry", [
        (0.0,),
        (0.0, None, "t", "burstable", 100.0, "extra"),
        "not-a-tuple",
    ])
    def test_malformed_entries_rejected(self, entry):
        with pytest.raises(ValidationError, match="trace entries"):
            trace_stream([entry])

    def test_bad_qos_propagates_from_stream_validation(self):
        with pytest.raises(ValidationError, match="unknown qos"):
            trace_stream([(0.0, chain(), "t", "gold")])

    def test_nonfinite_arrival_rejected(self):
        with pytest.raises(ValidationError, match="finite|negative"):
            trace_stream([(math.nan, chain(), "t")])
