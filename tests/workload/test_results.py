"""StreamResult aggregate hardening: NaN-free on degenerate job sets,
per-tenant fairness grouping, deadline bookkeeping properties."""

from __future__ import annotations

import math
from types import SimpleNamespace

from hypothesis import given
from hypothesis import strategies as st

from repro.workload.results import JobResult, StreamResult


def job(jid, tenant, arrival, start, end, isolated=None, deadline=None):
    return JobResult(
        jid=jid, name=f"j{jid}", tenant=tenant, arrival_us=arrival,
        start_us=start, end_us=end, n_tasks=1, isolated_us=isolated,
        deadline_us=deadline,
    )


def stream_result(jobs, makespan=100.0):
    return StreamResult(
        stream_name="s", machine="m", scheduler="sched",
        jobs=jobs, sim=SimpleNamespace(makespan=makespan),
    )


class TestDegenerateAggregates:
    def test_empty_job_set_is_nan_free(self):
        res = stream_result([])
        for value in (
            res.mean_latency_us, res.p95_latency_us, res.p99_latency_us,
            res.mean_queueing_us, res.fairness, res.tenant_fairness,
            res.throughput_jobs_per_s,
        ):
            assert math.isfinite(value)
        assert res.mean_slowdown is None
        assert res.max_slowdown is None
        assert res.per_tenant() == {}

    def test_singleton_percentiles_equal_the_job(self):
        res = stream_result([job(0, "t", 0.0, 1.0, 11.0)])
        assert res.p95_latency_us == res.p99_latency_us == 11.0
        assert res.mean_latency_us == 11.0
        assert res.fairness == 1.0

    def test_zero_makespan_throughput_is_zero(self):
        assert stream_result([], makespan=0.0).throughput_jobs_per_s == 0.0


class TestTenantFairness:
    def test_groups_by_tenant_not_by_job(self):
        # Tenant "a" runs two jobs with slowdowns 1.0 and 3.0 (mean 2.0);
        # tenant "b" one job with slowdown 2.0: perfectly fair per
        # tenant even though per-job slowdowns differ.
        jobs = [
            job(0, "a", 0.0, 0.0, 10.0, isolated=10.0),   # slowdown 1.0
            job(1, "a", 0.0, 0.0, 30.0, isolated=10.0),   # slowdown 3.0
            job(2, "b", 0.0, 0.0, 20.0, isolated=10.0),   # slowdown 2.0
        ]
        res = stream_result(jobs)
        assert res.tenant_fairness == 1.0
        assert res.fairness < 1.0

    def test_falls_back_to_latency_without_baselines(self):
        jobs = [
            job(0, "a", 0.0, 0.0, 10.0),
            job(1, "b", 0.0, 0.0, 30.0),
        ]
        res = stream_result(jobs)
        # Jain over per-tenant mean latencies (10, 30).
        assert res.tenant_fairness < 1.0
        assert math.isfinite(res.tenant_fairness)

    def test_single_tenant_is_trivially_fair(self):
        jobs = [job(0, "a", 0.0, 0.0, 10.0), job(1, "a", 0.0, 0.0, 99.0)]
        assert stream_result(jobs).tenant_fairness == 1.0


_times = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestDeadlineProperties:
    @given(end=_times, deadline=_times)
    def test_missed_iff_positive_lateness(self, end, deadline):
        j = job(0, "t", 0.0, 0.0, end, deadline=deadline)
        assert j.lateness_us == end - deadline
        assert j.missed == (j.lateness_us > 0.0)

    def test_finishing_at_the_deadline_meets_it(self):
        j = job(0, "t", 0.0, 0.0, 100.0, deadline=100.0)
        assert j.lateness_us == 0.0
        assert j.missed is False

    def test_no_deadline_is_neither(self):
        j = job(0, "t", 0.0, 0.0, 100.0)
        assert j.lateness_us is None
        assert j.missed is None
        # Best-effort jobs never count toward the miss rate.
        assert stream_result([j]).deadline_miss_rate == 0.0

    @given(
        data=st.lists(
            st.tuples(_times, st.one_of(st.none(), _times)),
            min_size=1, max_size=12,
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_miss_rate_is_permutation_invariant(self, data, seed):
        import random

        jobs = [
            job(i, f"t{i % 3}", 0.0, 0.0, end, deadline=dl)
            for i, (end, dl) in enumerate(data)
        ]
        base = stream_result(jobs)
        shuffled = list(jobs)
        random.Random(seed).shuffle(shuffled)
        perm = stream_result(shuffled)
        assert perm.deadline_miss_rate == base.deadline_miss_rate
        assert len(perm.deadline_jobs) == len(base.deadline_jobs)
        assert sorted(perm.latenesses_us) == sorted(base.latenesses_us)
        # Percentiles are rank statistics: order must not matter.
        assert perm.p50_lateness_us == base.p50_lateness_us
        assert perm.p99_lateness_us == base.p99_lateness_us
