"""StreamResult aggregate hardening: NaN-free on degenerate job sets,
per-tenant fairness grouping."""

from __future__ import annotations

import math
from types import SimpleNamespace

from repro.workload.results import JobResult, StreamResult


def job(jid, tenant, arrival, start, end, isolated=None):
    return JobResult(
        jid=jid, name=f"j{jid}", tenant=tenant, arrival_us=arrival,
        start_us=start, end_us=end, n_tasks=1, isolated_us=isolated,
    )


def stream_result(jobs, makespan=100.0):
    return StreamResult(
        stream_name="s", machine="m", scheduler="sched",
        jobs=jobs, sim=SimpleNamespace(makespan=makespan),
    )


class TestDegenerateAggregates:
    def test_empty_job_set_is_nan_free(self):
        res = stream_result([])
        for value in (
            res.mean_latency_us, res.p95_latency_us, res.p99_latency_us,
            res.mean_queueing_us, res.fairness, res.tenant_fairness,
            res.throughput_jobs_per_s,
        ):
            assert math.isfinite(value)
        assert res.mean_slowdown is None
        assert res.max_slowdown is None
        assert res.per_tenant() == {}

    def test_singleton_percentiles_equal_the_job(self):
        res = stream_result([job(0, "t", 0.0, 1.0, 11.0)])
        assert res.p95_latency_us == res.p99_latency_us == 11.0
        assert res.mean_latency_us == 11.0
        assert res.fairness == 1.0

    def test_zero_makespan_throughput_is_zero(self):
        assert stream_result([], makespan=0.0).throughput_jobs_per_s == 0.0


class TestTenantFairness:
    def test_groups_by_tenant_not_by_job(self):
        # Tenant "a" runs two jobs with slowdowns 1.0 and 3.0 (mean 2.0);
        # tenant "b" one job with slowdown 2.0: perfectly fair per
        # tenant even though per-job slowdowns differ.
        jobs = [
            job(0, "a", 0.0, 0.0, 10.0, isolated=10.0),   # slowdown 1.0
            job(1, "a", 0.0, 0.0, 30.0, isolated=10.0),   # slowdown 3.0
            job(2, "b", 0.0, 0.0, 20.0, isolated=10.0),   # slowdown 2.0
        ]
        res = stream_result(jobs)
        assert res.tenant_fairness == 1.0
        assert res.fairness < 1.0

    def test_falls_back_to_latency_without_baselines(self):
        jobs = [
            job(0, "a", 0.0, 0.0, 10.0),
            job(1, "b", 0.0, 0.0, 30.0),
        ]
        res = stream_result(jobs)
        # Jain over per-tenant mean latencies (10, 30).
        assert res.tenant_fairness < 1.0
        assert math.isfinite(res.tenant_fairness)

    def test_single_tenant_is_trivially_fair(self):
        jobs = [job(0, "a", 0.0, 0.0, 10.0), job(1, "a", 0.0, 0.0, 99.0)]
        assert stream_result(jobs).tenant_fairness == 1.0
