"""simulate_stream facade: equivalence with simulate(), determinism,
per-job stats, obs provenance, invariant-checked runs."""

from __future__ import annotations

import json

import pytest

from repro.api import simulate, simulate_stream
from repro.apps.dense import cholesky_program
from repro.check.differential import fingerprint
from repro.experiments.stream_arrivals import run_stream_experiment
from repro.obs.events import JobDone, JobSubmit, TaskStart
from repro.schedulers.registry import scheduler_names
from repro.workload.stream import (
    closed_loop_stream,
    poisson_stream,
    trace_stream,
)
from tests.conftest import make_chain_program, make_fork_join_program


def small_stream(rate=120.0, n_jobs=4, seed=0):
    return poisson_stream(
        [
            ("chol", lambda: cholesky_program(4, 384)),
            ("forkjoin", lambda: make_fork_join_program(width=6)),
        ],
        rate_jobs_per_s=rate,
        n_jobs=n_jobs,
        seed=seed,
        tenants=("t0", "t1"),
    )


class TestSingleJobEquivalence:
    @pytest.mark.parametrize("scheduler", scheduler_names())
    def test_stream_of_one_job_matches_simulate(self, scheduler):
        program = cholesky_program(4, 384)
        stream = trace_stream([(0.0, program, "t0")])
        sres = simulate_stream(
            stream, "small-hetero", scheduler,
            isolated_baseline=False, record_trace=True,
        )
        res = simulate(program, "small-hetero", scheduler, record_trace=True)
        assert fingerprint(sres.sim) == fingerprint(res)
        assert sres.makespan_us == res.makespan
        job = sres.jobs[0]
        assert job.latency_us == res.makespan
        # start_us includes data staging, so only arrival-relative sanity:
        assert 0.0 <= job.queueing_us < res.makespan


class TestDeterminism:
    @pytest.mark.parametrize(
        "scheduler", ["multiprio", "edf", "multiprio-deadline"]
    )
    def test_same_stream_bit_identical_job_results(self, scheduler):
        stream = small_stream()
        a = simulate_stream(stream, "small-hetero", scheduler)
        b = simulate_stream(stream, "small-hetero", scheduler)
        assert [j.as_dict() for j in a.jobs] == [j.as_dict() for j in b.jobs]
        assert a.makespan_us == b.makespan_us

    @pytest.mark.parametrize(
        "scheduler", ["multiprio", "edf", "multiprio-deadline"]
    )
    def test_deadline_tagged_stream_deterministic(self, scheduler):
        def tagged():
            return poisson_stream(
                [("chol", lambda: cholesky_program(4, 384))],
                rate_jobs_per_s=200.0, n_jobs=4, seed=7,
                tenants=("t0", "t1"), deadline=6000.0,
            )

        a = simulate_stream(tagged(), "small-hetero", scheduler)
        b = simulate_stream(tagged(), "small-hetero", scheduler)
        assert [j.as_dict() for j in a.jobs] == [j.as_dict() for j in b.jobs]
        assert a.deadline_miss_rate == b.deadline_miss_rate
        assert a.latenesses_us == b.latenesses_us

    def test_experiment_serial_matches_parallel(self):
        kwargs = dict(
            rates=(60.0, 200.0), schedulers=("multiprio",), n_jobs=3,
            n_tiles=4, tile_size=384,
        )
        serial = run_stream_experiment(jobs=1, **kwargs)
        fanned = run_stream_experiment(jobs=2, **kwargs)
        assert [r.jobs for r in serial.rows] == [r.jobs for r in fanned.rows]
        assert [r.fairness for r in serial.rows] == [r.fairness for r in fanned.rows]


class TestPerJobStats:
    def test_jobs_queue_behind_each_other(self):
        # Saturating rate: later jobs must see queueing delay and
        # slowdown > 1 relative to their isolated runs.
        sres = simulate_stream(
            small_stream(rate=500.0, n_jobs=4), "small-hetero", "multiprio"
        )
        assert len(sres.jobs) == 4
        for job in sres.jobs:
            assert job.start_us >= job.arrival_us
            assert job.end_us > job.start_us
            assert job.latency_us > 0.0
            assert job.slowdown is not None and job.slowdown >= 1.0 - 1e-9
        assert sres.mean_queueing_us > 0.0
        assert max(sres.slowdowns) > 1.0
        assert 0.0 < sres.fairness <= 1.0

    def test_per_tenant_breakdown(self):
        sres = simulate_stream(small_stream(), "small-hetero", "multiprio")
        by_tenant = sres.per_tenant()
        assert set(by_tenant) == {"t0", "t1"}
        assert sum(v["jobs"] for v in by_tenant.values()) == len(sres.jobs)

    def test_as_dict_is_json_serializable(self):
        sres = simulate_stream(small_stream(n_jobs=2), "small-hetero", "multiprio")
        doc = json.loads(json.dumps(sres.as_dict()))
        assert doc["n_jobs"] == 2
        assert len(doc["jobs"]) == 2
        assert all("slowdown" in j for j in doc["jobs"])

    def test_deadline_stats_surface_in_stream_result(self):
        stream = poisson_stream(
            [("chol", lambda: cholesky_program(4, 384))],
            rate_jobs_per_s=400.0, n_jobs=4, seed=2,
            tenants=("t0", "t1"), deadline=5000.0,
        )
        sres = simulate_stream(
            stream, "small-hetero", "multiprio", isolated_baseline=False
        )
        assert len(sres.deadline_jobs) == 4
        for j in sres.jobs:
            assert j.deadline_us == pytest.approx(j.arrival_us + 5000.0)
            assert j.missed == (j.lateness_us > 0.0)
        assert 0.0 <= sres.deadline_miss_rate <= 1.0
        assert sres.deadline_miss_rate == pytest.approx(
            sum(1 for j in sres.jobs if j.missed) / 4
        )
        doc = json.loads(json.dumps(sres.as_dict()))
        assert "deadline_miss_rate" in doc
        assert all("lateness_us" in j for j in doc["jobs"])
        by_tenant = sres.per_tenant()
        assert all("deadline_miss_rate" in v for v in by_tenant.values())

    def test_closed_loop_jobs_serialize_per_client(self):
        stream = closed_loop_stream(
            [lambda: make_chain_program(n=3)], n_clients=2, jobs_per_client=2
        )
        sres = simulate_stream(
            stream, "small-hetero", "multiprio", isolated_baseline=False
        )
        for client in ("client0", "client1"):
            mine = sorted(
                (j for j in sres.jobs if j.tenant == client),
                key=lambda j: j.jid,
            )
            assert len(mine) == 2
            assert mine[1].start_us >= mine[0].end_us - 1e-9


class TestObsProvenance:
    def test_job_submit_and_done_events(self):
        stream = small_stream(n_jobs=3)
        sres = simulate_stream(
            stream, "small-hetero", "multiprio",
            isolated_baseline=False, record_level="tasks",
        )
        events = sres.sim.events
        submits = [e for e in events if isinstance(e, JobSubmit)]
        dones = [e for e in events if isinstance(e, JobDone)]
        assert len(submits) == len(dones) == 3
        arrival_of = {j.jid: j.arrival_us for j in stream.jobs}
        tenant_of = {j.jid: j.tenant for j in stream.jobs}
        for ev in submits:
            assert ev.tenant == tenant_of[ev.jid]
            # No window: the reveal happens exactly at the arrival clock.
            assert ev.t == pytest.approx(arrival_of[ev.jid])
        done_of = {e.jid: e for e in dones}
        for job in sres.jobs:
            ev = done_of[job.jid]
            assert ev.latency == pytest.approx(job.latency_us)
            assert ev.tenant == job.tenant

    def test_no_task_starts_before_its_release(self):
        stream = small_stream(n_jobs=3)
        sres = simulate_stream(
            stream, "small-hetero", "multiprio",
            isolated_baseline=False, record_level="tasks",
        )
        from repro.workload.merge import merge_stream

        merged_release = merge_stream(stream).release_times
        starts = {
            e.tid: e.t for e in sres.sim.events if isinstance(e, TaskStart)
        }
        for tid, t in starts.items():
            assert t >= merged_release[tid] - 1e-9


class TestCheckedStreams:
    @pytest.mark.parametrize("window", [None, 4])
    def test_invariant_checker_passes_on_streams(self, window):
        sres = simulate_stream(
            small_stream(n_jobs=3), "small-hetero", "multiprio",
            isolated_baseline=False, check_invariants=True,
            submission_window=window,
        )
        assert sres.sim.n_tasks == sum(j.n_tasks for j in sres.jobs)

    def test_checker_does_not_perturb_stream_schedule(self):
        stream = small_stream(n_jobs=3)
        plain = simulate_stream(
            stream, "small-hetero", "multiprio",
            isolated_baseline=False, record_trace=True,
        )
        checked = simulate_stream(
            stream, "small-hetero", "multiprio",
            isolated_baseline=False, record_trace=True, check_invariants=True,
        )
        assert fingerprint(plain.sim) == fingerprint(checked.sim)
