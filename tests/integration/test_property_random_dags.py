"""Property-based integration tests: random STF programs, every scheduler.

Hypothesis generates random sequences of task submissions (random access
modes over a small pool of handles, random flops, random implementation
sets); for each generated program we check that the STF inference gives a
valid DAG and that schedulers produce feasible schedules on a
heterogeneous platform.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.validation import check_schedule
from repro.platform.machines import small_hetero
from repro.runtime.dag import critical_path_length, validate_dag
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode
from repro.schedulers.registry import make_scheduler

MODES = [AccessMode.R, AccessMode.W, AccessMode.RW, AccessMode.COMMUTE]
IMPLS = [("cpu",), ("cuda",), ("cpu", "cuda")]

submission = st.tuples(
    st.lists(  # accesses: (handle index, mode index), distinct handles
        st.tuples(st.integers(0, 7), st.integers(0, 3)),
        min_size=1,
        max_size=4,
        unique_by=lambda t: t[0],
    ),
    st.sampled_from(IMPLS),
    st.floats(min_value=0.0, max_value=1e9),
)

programs = st.lists(submission, min_size=1, max_size=40)


def build_program(submissions):
    flow = TaskFlow("random")
    handles = [flow.data(1024 * (i + 1), label=f"h{i}") for i in range(8)]
    for accesses, impls, flops in submissions:
        flow.submit(
            "kernel",
            [(handles[h], MODES[m]) for h, m in accesses],
            flops=flops,
            implementations=impls,
        )
    return flow.program()


@given(programs)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_stf_always_produces_valid_dag(submissions):
    program = build_program(submissions)
    validate_dag(program.tasks)


@given(programs)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@pytest.mark.parametrize("scheduler", ["multiprio", "dmdas", "heteroprio", "lws", "eager"])
def test_schedulers_produce_feasible_schedules(scheduler, submissions):
    program = build_program(submissions)
    machine = small_hetero(n_cpus=3, n_gpus=1, gpu_streams=2)
    pm = AnalyticalPerfModel(machine.calibration())
    sim = Simulator(machine.platform(), make_scheduler(scheduler), pm, seed=0)
    res = sim.run(program)
    check_schedule(program, res.trace, sim.platform.workers)
    # Makespan can never beat the communication-free critical path.
    cp = critical_path_length(
        program.tasks,
        lambda t: min(pm.estimate(t, a) for a in ("cpu", "cuda") if t.can_exec(a)),
    )
    assert res.makespan >= cp - 1e-6


@given(programs)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_multiprio_stats_consistent(submissions):
    """MultiPrio must never report negative counters, and every run on a
    heterogeneous machine must terminate without forced pops on these
    small graphs."""
    program = build_program(submissions)
    machine = small_hetero(n_cpus=2, n_gpus=1)
    sim = Simulator(
        machine.platform(),
        make_scheduler("multiprio"),
        AnalyticalPerfModel(machine.calibration()),
        seed=1,
    )
    res = sim.run(program)
    assert all(v >= 0 for v in res.scheduler_stats.values())
