"""History-model integration: calibration improves across repeated runs.

StarPU calibrates its performance models by running; this test drives
the same loop — a HistoryPerfModel whose cold estimates are pessimistic
learns the true per-bucket means after one full execution, and the
estimates then match the measured times.
"""

import pytest

from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel, HistoryPerfModel
from repro.schedulers.registry import make_scheduler
from tests.conftest import make_fork_join_program


def test_history_model_learns_from_a_run(hetero_machine):
    truth = AnalyticalPerfModel(hetero_machine.calibration())
    history = HistoryPerfModel(truth, min_samples=2, cold_factor=3.0)
    program = make_fork_join_program(width=12, flops=3e8)

    task = program.tasks[1]
    cold = history.estimate(task, "cpu")
    assert cold == pytest.approx(3.0 * truth.estimate(task, "cpu"))

    sim = Simulator(hetero_machine.platform(), make_scheduler("eager"), history, seed=0)
    sim.run(program)
    # Fork-join: 12 identical middle tasks — plenty of samples per bucket.
    arch_used = "cpu" if history.n_samples(task, "cpu") >= 2 else "cuda"
    warm = history.estimate(task, arch_used)
    assert warm == pytest.approx(truth.estimate(task, arch_used), rel=0.01)


def test_calibrated_model_improves_scheduling(hetero_machine):
    """A dm-family scheduler misled by 5x-pessimistic GPU cold estimates
    must recover once the history model has calibrated."""
    truth = AnalyticalPerfModel(hetero_machine.calibration())
    program = make_fork_join_program(width=24, flops=8e8)

    class GpuPessimist(HistoryPerfModel):
        def estimate(self, task, arch):
            value = super().estimate(task, arch)
            key = self._key(task, arch)
            if arch == "cuda" and self._counts.get(key, 0) < self.min_samples:
                return value * 5.0
            return value

    history = GpuPessimist(truth, min_samples=2)
    spans = []
    for _ in range(3):
        sim = Simulator(
            hetero_machine.platform(), make_scheduler("dmda"), history, seed=0
        )
        spans.append(sim.run(program).makespan)
    assert spans[-1] <= spans[0] * 1.001  # calibration never hurts here
    # And the calibrated run matches the oracle-model run.
    oracle = Simulator(
        hetero_machine.platform(), make_scheduler("dmda"), truth, seed=0
    ).run(program)
    assert spans[-1] == pytest.approx(oracle.makespan, rel=0.05)
