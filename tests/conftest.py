"""Shared fixtures: small platforms, calibrations, simple programs."""

from __future__ import annotations

import pytest

from repro.platform.machines import cpu_only, small_hetero
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import Program, TaskFlow
from repro.runtime.task import AccessMode


@pytest.fixture
def hetero_machine():
    """4 CPUs + 1 GPU with 2 streams."""
    return small_hetero(n_cpus=4, n_gpus=1, gpu_streams=2)


@pytest.fixture
def two_gpu_machine():
    """4 CPUs + 2 GPUs, one stream each."""
    return small_hetero(n_cpus=4, n_gpus=2, gpu_streams=1)


@pytest.fixture
def cpu_machine():
    """Homogeneous 4-CPU node."""
    return cpu_only(n_cpus=4)


@pytest.fixture
def perfmodel(hetero_machine):
    """Deterministic analytical model for the hetero machine."""
    return AnalyticalPerfModel(hetero_machine.calibration())


def make_chain_program(n: int = 5, flops: float = 1e7) -> Program:
    """A linear chain t0 -> t1 -> ... -> t{n-1} through one handle."""
    flow = TaskFlow("chain")
    handle = flow.data(4096, label="h")
    flow.submit("gemm", [(handle, AccessMode.W)], flops=flops,
                implementations=("cpu", "cuda"))
    for _ in range(n - 1):
        flow.submit("gemm", [(handle, AccessMode.RW)], flops=flops,
                    implementations=("cpu", "cuda"))
    return flow.program()


def make_fork_join_program(width: int = 6, flops: float = 1e7) -> Program:
    """One source fans out to ``width`` tasks that join into one sink."""
    flow = TaskFlow("forkjoin")
    root = flow.data(4096, label="root")
    mids = [flow.data(4096, label=f"m{i}") for i in range(width)]
    sink = flow.data(4096, label="sink")
    flow.submit("gemm", [(root, AccessMode.W)], flops=flops,
                implementations=("cpu", "cuda"))
    for mid in mids:
        flow.submit("gemm", [(root, AccessMode.R), (mid, AccessMode.W)],
                    flops=flops, implementations=("cpu", "cuda"))
    flow.submit("gemm", [(m, AccessMode.R) for m in mids] + [(sink, AccessMode.W)],
                flops=flops, implementations=("cpu", "cuda"))
    return flow.program()


@pytest.fixture
def chain_program() -> Program:
    return make_chain_program()


@pytest.fixture
def fork_join_program() -> Program:
    return make_fork_join_program()
