"""The runtime invariant validator: clean runs pass, corruption is caught."""

from __future__ import annotations

import pytest

from repro.apps.dense import cholesky_program
from repro.apps.fmm import fmm_program
from repro.check.differential import fingerprint
from repro.core.multiprio import MultiPrio
from repro.obs.events import InvariantViolation
from repro.platform.machines import small_hetero
from repro.runtime.engine import SchedContext, Simulator
from repro.runtime.faults import FaultModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.task import TaskState
from repro.schedulers.eager import Eager
from repro.schedulers.registry import make_scheduler
from repro.utils.validation import InvariantError
from tests.conftest import make_fork_join_program


def build(scheduler="eager", *, machine=None, sched=None, **kw):
    machine = machine or small_hetero(n_cpus=4, n_gpus=1)
    return Simulator(
        machine.platform(),
        sched if sched is not None else make_scheduler(scheduler),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        record_trace=kw.pop("record_trace", False),
        check_invariants=kw.pop("check_invariants", True),
        **kw,
    )


class Saboteur(Eager):
    """Delegates to Eager but corrupts runtime state after N pops."""

    name = "saboteur"

    def __init__(self, after: int, corrupt) -> None:
        super().__init__()
        self._after = after
        self._corrupt = corrupt
        self._pops = 0
        self.fired = False

    def pop(self, worker):
        task = super().pop(worker)
        if task is not None:
            self._pops += 1
            if self._pops == self._after and not self.fired:
                self.fired = True
                self._corrupt()
        return task


class TestCleanRunsPass:
    @pytest.mark.parametrize("name", ["eager", "multiprio", "dmdas", "heteroprio"])
    def test_schedulers_validate_clean(self, name):
        res = build(name).run(cholesky_program(6, 384))
        assert res.makespan > 0

    def test_commute_heavy_fmm_validates(self):
        res = build("multiprio").run(fmm_program(800, height=3, seed=0))
        assert res.makespan > 0

    def test_transient_faults_validate(self):
        sim = build(
            "multiprio",
            fault_model=FaultModel(task_failure_rate=0.3, max_retries=100, seed=1),
        )
        res = sim.run(cholesky_program(5, 384))
        assert res.faults is not None and res.faults.task_failures > 0

    def test_worker_death_validates(self):
        sim = build(
            "multiprio",
            fault_model=FaultModel(worker_kills=[(0, 200.0)], seed=0),
        )
        res = sim.run(cholesky_program(5, 384))
        assert res.faults is not None and res.faults.worker_failures == 1

    def test_submission_window_validates(self):
        res = build("multiprio", submission_window=4).run(cholesky_program(5, 384))
        assert res.makespan > 0

    def test_checker_does_not_perturb_the_schedule(self):
        program = cholesky_program(5, 384)
        checked = build("multiprio", record_trace=True).run(program)
        plain = build(
            "multiprio", record_trace=True, check_invariants=False
        ).run(program)
        assert fingerprint(checked) == fingerprint(plain)


class TestCorruptionCaught:
    def run_sabotaged(self, program, after, corrupt, **kw):
        machine = small_hetero(n_cpus=4, n_gpus=1)
        sched = Saboteur(after, corrupt)
        sim = build(machine=machine, sched=sched, **kw)
        return sim, sim.run(program)

    def test_msi_unknown_node(self):
        program = make_fork_join_program(width=8)
        with pytest.raises(InvariantError, match=r"\[msi\].*unknown nodes"):
            self.run_sabotaged(
                program, 3, lambda: program.handles[0].valid_nodes.add(999)
            )

    def test_msi_spurious_pin(self):
        program = make_fork_join_program(width=8)
        with pytest.raises(InvariantError, match=r"\[msi\].*pin count"):
            self.run_sabotaged(
                program, 3,
                lambda: program.handles[0]._pins.__setitem__(0, 5),
            )

    def test_link_clock_moved_backward(self):
        program = cholesky_program(4, 384)
        machine = small_hetero(n_cpus=4, n_gpus=1)
        platform = machine.platform()
        link = platform.transfers.links()[0]

        def corrupt():
            link.busy_until -= 25.0

        sched = Saboteur(5, corrupt)
        sim = Simulator(
            platform, sched, AnalyticalPerfModel(machine.calibration()),
            seed=0, record_trace=False, check_invariants=True,
        )
        with pytest.raises(InvariantError, match=r"\[link\]"):
            sim.run(program)
        assert sched.fired

    def test_conservation_phantom_running_task(self):
        program = make_fork_join_program(width=8)

        def corrupt():
            # The sink still waits on predecessors, so no pop can reach
            # it before the checker does: marking it RUNNING leaves a
            # phantom running task no worker holds.
            sink = program.tasks[-1]
            assert sink.n_unfinished_preds > 0
            sink.state = TaskState.RUNNING

        with pytest.raises(InvariantError, match=r"\[conservation\].*no worker"):
            self.run_sabotaged(program, 2, corrupt)

    def test_task_state_resurrected_done_task(self):
        program = make_fork_join_program(width=8)

        def corrupt():
            done = next(t for t in program.tasks if t.state is TaskState.DONE)
            done.state = TaskState.READY

        with pytest.raises(InvariantError, match=r"\[task_state\]"):
            self.run_sabotaged(program, 4, corrupt)

    def test_scheduler_self_check_feeds_in(self):
        class Paranoid(Eager):
            name = "paranoid"

            def check(self):
                return ["boom"]

        machine = small_hetero(n_cpus=2, n_gpus=1)
        sim = build(machine=machine, sched=Paranoid())
        with pytest.raises(InvariantError, match=r"\[scheduler\] boom"):
            sim.run(make_fork_join_program(width=4))

    def test_violations_emitted_as_events(self):
        program = make_fork_join_program(width=8)
        machine = small_hetero(n_cpus=4, n_gpus=1)
        sched = Saboteur(
            3, lambda: program.handles[0].valid_nodes.add(999)
        )
        sim = Simulator(
            machine.platform(), sched,
            AnalyticalPerfModel(machine.calibration()),
            seed=0, record_trace=False, record_level="tasks",
            check_invariants=True,
        )
        with pytest.raises(InvariantError):
            sim.run(program)
        assert sim.obs is not None
        violations = [
            ev for ev in sim.obs.events if isinstance(ev, InvariantViolation)
        ]
        assert violations and violations[-1].check == "msi"


class TestRtViolations:
    """The ``rt`` family: overhead conservation, resource exclusion and
    the merged stream's slack bookkeeping."""

    def checker_with(self, *, overhead=None, resource=None):
        # White-box: bind only the rt-family state the check reads.
        from repro.check.invariants import InvariantChecker

        checker = InvariantChecker()
        checker.overhead_ledger = overhead
        checker.resource_ledger = resource
        checker._rt_grant_idx = 0
        checker._rt_res_end = {}
        checker._rt_sched_floor = 0.0
        return checker

    def test_overhead_charge_leak_caught(self):
        from repro.runtime.overhead import OverheadLedger, SchedOverheadModel

        ledger = OverheadLedger(SchedOverheadModel(push_us=2.0))
        ledger.push(0.0)
        ledger.charged_us += 5.0  # corrupt: charge without a decision
        out = []
        self.checker_with(overhead=ledger)._check_rt(out)
        assert any("overhead charge leaked" in d for _, d in out)
        assert all(f == "rt" for f, _ in out)

    def test_sched_clock_retreat_caught(self):
        from repro.runtime.overhead import OverheadLedger, SchedOverheadModel

        ledger = OverheadLedger(SchedOverheadModel(push_us=2.0))
        ledger.push(10.0)
        checker = self.checker_with(overhead=ledger)
        out = []
        checker._check_rt(out)
        assert out == []
        ledger.sched_free -= 5.0  # corrupt: the virtual core un-worked
        ledger.charged_us -= 5.0  # keep conservation consistent
        checker._check_rt(out)
        assert any("moved backward" in d for _, d in out)

    def test_resource_double_hold_caught(self):
        from repro.runtime.resources import ResourceLedger, ResourceProtocol
        from repro.runtime.task import Task

        ledger = ResourceLedger(ResourceProtocol(), [])
        ledger.book(Task(0, "t", resources=("r",)), 0.0, 50.0)
        ledger.book(Task(1, "t", resources=("r",)), 10.0, 60.0)  # overlap
        out = []
        self.checker_with(resource=ledger)._check_rt(out)
        assert any("double-held" in d for _, d in out)

    def test_resource_negative_grant_caught(self):
        from repro.runtime.resources import ResourceLedger, ResourceProtocol
        from repro.runtime.task import Task

        ledger = ResourceLedger(ResourceProtocol(), [])
        ledger.book(Task(0, "t", resources=("r",)), 50.0, 10.0)
        out = []
        self.checker_with(resource=ledger)._check_rt(out)
        assert any("ends before it starts" in d for _, d in out)

    def test_grant_audit_is_incremental(self):
        from repro.runtime.resources import ResourceLedger, ResourceProtocol
        from repro.runtime.task import Task

        ledger = ResourceLedger(ResourceProtocol(), [])
        checker = self.checker_with(resource=ledger)
        ledger.book(Task(0, "t", resources=("r",)), 0.0, 50.0)
        out = []
        checker._check_rt(out)
        assert out == [] and checker._rt_grant_idx == 1
        ledger.book(Task(1, "t", resources=("r",)), 60.0, 80.0)
        checker._check_rt(out)
        assert out == [] and checker._rt_grant_idx == 2

    def test_merged_deadline_outside_job_window_caught(self):
        from repro.workload.merge import merge_stream
        from repro.workload.stream import trace_stream

        stream = trace_stream(
            [(0.0, make_fork_join_program(width=4), "t", "burstable", 100.0)]
        )
        merged = merge_stream(stream)
        # Corrupt the merge's min(job, own) rule: one task claims more
        # slack than its job window allows.
        merged.tasks[1].deadline_us = 10_000.0
        with pytest.raises(InvariantError, match=r"\[rt\].*outside job"):
            build("multiprio").run(merged)


class TestActivation:
    def test_env_var_enables(self, monkeypatch, hetero_machine):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        sim = Simulator(
            hetero_machine.platform(), Eager(),
            AnalyticalPerfModel(hetero_machine.calibration()),
        )
        assert sim.check_invariants is True

    def test_env_var_zero_and_unset_disable(self, monkeypatch, hetero_machine):
        def make():
            return Simulator(
                hetero_machine.platform(), Eager(),
                AnalyticalPerfModel(hetero_machine.calibration()),
            )

        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        assert make().check_invariants is False
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert make().check_invariants is False

    def test_explicit_flag_beats_env(self, monkeypatch, hetero_machine):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        sim = Simulator(
            hetero_machine.platform(), Eager(),
            AnalyticalPerfModel(hetero_machine.calibration()),
            check_invariants=False,
        )
        assert sim.check_invariants is False

    def test_simulate_facade_accepts_flag(self):
        from repro.api import simulate

        res = simulate(
            cholesky_program(4, 384), "small-hetero", "multiprio",
            check_invariants=True,
        )
        assert res.makespan > 0


class TestWindowFamily:
    """Unit-drive _check_window: the engine only ever feeds it healthy
    counters, so corruption has to be injected directly."""

    def make_checker(self, n_tasks, *, window=None, releases=None):
        from types import SimpleNamespace

        from repro.check.invariants import InvariantChecker

        checker = InvariantChecker()
        checker.window = window
        checker.releases = releases
        checker.program = SimpleNamespace(tasks=[None] * n_tasks)
        return checker

    def test_in_flight_over_window_flagged(self):
        checker = self.make_checker(10, window=2)
        out: list = []
        checker._check_window(revealed=5, n_done=1, prev_now=0.0, out=out)
        assert any("exceed the submission window" in d for _, d in out)

    def test_stalled_reveal_without_excuse_flagged(self):
        checker = self.make_checker(10, window=4)
        out: list = []
        checker._check_window(revealed=3, n_done=2, prev_now=0.0, out=out)
        assert any("reveal loop leaked" in d for _, d in out)

    def test_full_window_excuses_the_stall(self):
        checker = self.make_checker(10, window=2)
        out: list = []
        checker._check_window(revealed=4, n_done=2, prev_now=0.0, out=out)
        assert out == []

    def test_future_release_excuses_the_stall(self):
        releases = tuple([0.0] * 3 + [500.0] * 7)
        checker = self.make_checker(10, releases=releases)
        out: list = []
        checker._check_window(revealed=3, n_done=1, prev_now=100.0, out=out)
        assert out == []

    def test_past_release_does_not_excuse(self):
        releases = tuple([0.0] * 3 + [500.0] * 7)
        checker = self.make_checker(10, releases=releases)
        out: list = []
        checker._check_window(revealed=3, n_done=1, prev_now=600.0, out=out)
        assert any("reveal loop leaked" in d for _, d in out)

    def test_fully_revealed_is_always_clean(self):
        checker = self.make_checker(4, window=1)
        out: list = []
        checker._check_window(revealed=4, n_done=3, prev_now=0.0, out=out)
        assert out == []


class TestMultiPrioSelfCheck:
    def make_loaded(self):
        machine = small_hetero(n_cpus=2, n_gpus=1)
        ctx = SchedContext(
            machine.platform(), AnalyticalPerfModel(machine.calibration())
        )
        sched = MultiPrio()
        sched.setup(ctx)
        program = make_fork_join_program(width=6)
        for task in program.source_tasks():
            task.state = TaskState.READY
            sched.push(task)
        return sched, program

    def test_clean_state_reports_nothing(self):
        sched, _ = self.make_loaded()
        assert sched.check() == []

    def test_counter_drift_detected(self):
        sched, _ = self.make_loaded()
        node = next(iter(sched.ready_tasks_count))
        sched.ready_tasks_count[node] += 1
        assert any("ready_tasks_count" in p for p in sched.check())

    def test_brw_drift_detected(self):
        sched, program = self.make_loaded()
        task = next(iter(program.source_tasks()))
        task.sched["mp_best_delta"] = task.sched.get("mp_best_delta", 0.0) + 1e6
        assert any("best_remaining_work" in p for p in sched.check())
