"""Differential harness: fingerprints, analytic bounds, the suite, CLI wiring."""

from __future__ import annotations

from repro.apps.dense import cholesky_program
from repro.check.differential import (
    CheckOutcome,
    builtin_apps,
    check_power_noop_equivalence,
    check_window_equivalence,
    fingerprint,
    makespan_lower_bounds,
    run_differential_suite,
)
from repro.cli import build_parser, cmd_check
from repro.platform.machines import small_hetero
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.registry import make_scheduler
from tests.conftest import make_chain_program, make_fork_join_program


def run(program, machine, scheduler="multiprio", **kw):
    sim = Simulator(
        machine.platform(),
        make_scheduler(scheduler),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        record_trace=kw.pop("record_trace", True),
        **kw,
    )
    return sim.run(program)


class TestFingerprint:
    def test_identical_runs_agree(self, hetero_machine):
        program = cholesky_program(5, 384)
        a = fingerprint(run(program, hetero_machine))
        b = fingerprint(run(program, hetero_machine))
        assert a == b

    def test_covers_every_task(self, hetero_machine):
        program = cholesky_program(5, 384)
        records, makespan, _ = fingerprint(run(program, hetero_machine))
        assert len(records) == len(program.tasks)
        assert makespan == max(end for _, _, _, end in records)

    def test_scheduler_change_shows_up(self, hetero_machine):
        program = cholesky_program(5, 384)
        a = fingerprint(run(program, hetero_machine, "multiprio"))
        b = fingerprint(run(program, hetero_machine, "eager"))
        assert a != b


class TestLowerBounds:
    def test_chain_critical_path_is_the_whole_chain(self):
        machine = small_hetero(n_cpus=4, n_gpus=1)
        program = make_chain_program(n=6)
        cp, ww = makespan_lower_bounds(program, machine)
        assert cp > 0 and ww > 0
        # A pure chain has no parallelism: its critical path is all of
        # the work at best-arch speed, far above the work/width bound.
        assert cp >= ww * 4
        res = run(program, machine)
        assert res.makespan >= cp - 1e-6

    def test_fork_join_bounds_hold(self, hetero_machine):
        program = make_fork_join_program(width=10)
        cp, ww = makespan_lower_bounds(program, hetero_machine)
        res = run(program, hetero_machine)
        assert res.makespan >= max(cp, ww) - 1e-6


class TestSuite:
    def test_suite_passes_on_custom_app(self):
        outcomes = run_differential_suite(
            machine=small_hetero(n_cpus=4, n_gpus=1),
            schedulers=("multiprio",),
            apps=[("forkjoin", lambda: make_fork_join_program(width=8))],
        )
        assert outcomes
        failed = [o for o in outcomes if not o.passed]
        assert not failed, "\n".join(str(o) for o in failed)
        names = {o.name.split("[")[0] for o in outcomes}
        assert names == {
            "invariants", "invariants+faults", "determinism.repeat",
            "determinism.checker", "determinism.record_level",
            "determinism.record_trace", "bounds.makespan",
            "faults.zero_rate", "window.equivalence", "pipeline.bound",
            "control.noop", "control.noop_ledger",
            "cluster.single_node", "cluster.single_node_jobs",
            "batch.equivalence", "batch.nodrain_complete",
            "rt.overhead_noop", "rt.resources_noop", "rt.deadline_noop",
            "power.noop_ladder", "power.noop_metering",
            "power.metering_joules",
        }

    def test_progress_callback_sees_everything(self):
        seen = []
        outcomes = run_differential_suite(
            machine=small_hetero(n_cpus=2, n_gpus=1),
            schedulers=("eager",),
            apps=[("chain", lambda: make_chain_program(n=4))],
            progress=seen.append,
        )
        assert seen == outcomes

    def test_builtin_app_grids(self):
        quick = builtin_apps(quick=True)
        full = builtin_apps(quick=False)
        assert {name for name, _ in quick} <= {name for name, _ in full}
        for _, factory in quick:
            assert factory().tasks  # factories build fresh programs

    def test_outcome_formatting(self):
        ok = CheckOutcome("x", True, "unused when passing")
        bad = CheckOutcome("y", False, "went wrong")
        assert str(ok).startswith("[ok  ] x")
        assert "went wrong" in str(bad) and "FAIL" in str(bad)


class TestPowerNoopEquivalence:
    def test_passive_models_are_noops(self):
        """Zero-delta differential: the default ladder and the metering
        model must be bit-identical to a power-blind run, and the
        metered joules must match the post-hoc conversion exactly."""
        outcomes = check_power_noop_equivalence(
            small_hetero(n_cpus=2, n_gpus=1), schedulers=("multiprio",)
        )
        assert [o.name for o in outcomes] == [
            "power.noop_ladder[multiprio]",
            "power.noop_metering[multiprio]",
            "power.metering_joules[multiprio]",
        ]
        failed = [o for o in outcomes if not o.passed]
        assert not failed, "\n".join(str(o) for o in failed)


class TestWindowEquivalence:
    def test_never_binding_window_passes(self, hetero_machine):
        outcomes = check_window_equivalence(
            "forkjoin", make_fork_join_program(width=8),
            hetero_machine, "multiprio",
        )
        assert len(outcomes) == 2
        failed = [o for o in outcomes if not o.passed]
        assert not failed, "\n".join(str(o) for o in failed)

    def test_names_carry_the_window(self, hetero_machine):
        program = make_chain_program(n=4)
        outcomes = check_window_equivalence(
            "chain", program, hetero_machine, "eager"
        )
        assert {o.name for o in outcomes} == {
            f"window.equivalence[chain/eager/w={len(program.tasks)}]",
            f"window.equivalence[chain/eager/w={4 * len(program.tasks)}]",
        }


class TestCliWiring:
    def test_check_subcommand_parses(self):
        args = build_parser().parse_args(["check", "--quick"])
        assert args.func is cmd_check
        assert args.quick is True
        assert args.scheduler == ["multiprio", "dmdas", "heteroprio"]

    def test_check_subcommand_rejects_unknown_scheduler(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--scheduler", "nonsense"])
        capsys.readouterr()
